"""The paper's core contribution: the accelerator model.

Functional side (bit-exact): ``ConvUnit`` / ``PoolUnit`` / ``LinearUnit``
driven by ``Controller`` over ping-pong buffers.  Analytic side:
``LatencyModel`` / ``PowerModel`` / ``ResourceModel`` calibrated against
the paper's published numbers.  ``Accelerator`` ties both together.
"""

from repro.core.accelerator import Accelerator
from repro.core.adder_array import AdderArray
from repro.core.bram import BramPlan, plan_bram
from repro.core.calibration import (
    DEFAULT_LATENCY,
    DEFAULT_POWER,
    DEFAULT_RESOURCES,
    LatencyCalibration,
    PowerCalibration,
    ResourceCalibration,
)
from repro.core.compiler import (
    CompiledModel,
    ConvSchedule,
    LayerProgram,
    compile_network,
)
from repro.core.config import (
    AcceleratorConfig,
    ConvUnitConfig,
    LinearUnitConfig,
    MemoryConfig,
    PoolUnitConfig,
)
from repro.core.controller import (
    Controller,
    ExecutionTrace,
    LayerTrace,
    TraceMerge,
)
from repro.core.conv_unit import ConvUnit
from repro.core.engine import (
    ExecutionEngine,
    ReferenceEngine,
    SparseEngine,
    VectorizedEngine,
    available_backends,
    clear_engine_cache,
    create_engine,
    engine_cache_stats,
    register_engine,
    warm_compile,
    warm_engine,
)
from repro.core.dram import DramModel, DramTransfer
from repro.core.energy import EnergyBreakdown, EnergyConstants, trace_energy
from repro.core.isa import (
    Instruction,
    Opcode,
    assemble,
    decode,
    disassemble,
    encode,
)
from repro.core.latency import (
    LatencyModel,
    LayerLatency,
    channels_per_pass,
    conv_group_count,
    conv_layer_cycles,
    linear_layer_cycles,
    pool_layer_cycles,
)
from repro.core.linear_unit import LinearUnit
from repro.core.output_logic import OutputAccumulator
from repro.core.pingpong import BufferPair, PingPongBuffer
from repro.core.pool_unit import PoolUnit
from repro.core.power import PowerModel
from repro.core.report import PerformanceReport
from repro.core.resources import ResourceEstimate, ResourceModel
from repro.core.shift_register import InputShiftRegister
from repro.core.stats import MemoryTraffic, UnitStats

__all__ = [
    "Accelerator",
    "AcceleratorConfig",
    "AdderArray",
    "BramPlan",
    "BufferPair",
    "CompiledModel",
    "Controller",
    "ConvSchedule",
    "ConvUnit",
    "ConvUnitConfig",
    "DEFAULT_LATENCY",
    "DEFAULT_POWER",
    "DEFAULT_RESOURCES",
    "DramModel",
    "DramTransfer",
    "EnergyBreakdown",
    "EnergyConstants",
    "ExecutionEngine",
    "ExecutionTrace",
    "Instruction",
    "Opcode",
    "InputShiftRegister",
    "LatencyCalibration",
    "LatencyModel",
    "LayerLatency",
    "LayerProgram",
    "LayerTrace",
    "LinearUnit",
    "LinearUnitConfig",
    "MemoryConfig",
    "MemoryTraffic",
    "OutputAccumulator",
    "PerformanceReport",
    "PingPongBuffer",
    "PoolUnit",
    "PoolUnitConfig",
    "PowerCalibration",
    "PowerModel",
    "ReferenceEngine",
    "SparseEngine",
    "ResourceCalibration",
    "ResourceEstimate",
    "ResourceModel",
    "TraceMerge",
    "UnitStats",
    "VectorizedEngine",
    "assemble",
    "available_backends",
    "channels_per_pass",
    "clear_engine_cache",
    "compile_network",
    "create_engine",
    "engine_cache_stats",
    "conv_group_count",
    "conv_layer_cycles",
    "decode",
    "disassemble",
    "encode",
    "linear_layer_cycles",
    "plan_bram",
    "pool_layer_cycles",
    "register_engine",
    "trace_energy",
    "warm_compile",
    "warm_engine",
]

"""Analytic latency model: per-layer cycle counts from Alg. 1's loop
hierarchy.

The loop structure fixes the cycle count almost completely:

* convolution — ``G`` output-channel groups (see :func:`channels_per_pass`)
  × ``T`` time steps × ``C_in`` input channels × one pass of the padded
  input rows through the adder array, each row costing its ``Kc`` shifts
  plus a calibrated overhead (``repro.core.calibration``);
* pooling — channel-serial on the single pooling unit, one pass of the
  input rows per (step, channel);
* linear — weight-fetch bound: one weight word per cycle, ``T × blocks ×
  N_in`` with ``blocks = ceil(N_out / parallel_outputs)``;
* flatten — a buffer-to-buffer burst of the spike bits;
* DRAM layers — weights stream *before* the layer computes (the paper's
  second memory option), adding non-overlapped transfer cycles.

Channel packing: several output channels share one unit when whole input
rows fit the shift register side by side (``p = floor(R / W_in)`` with
``R = X + Kc − 1``), capped so the packed output rows fit the adder
columns.  This reproduces the paper's "multiple output channels can share
a single convolution unit, if their size permits" and is what lets the
120-channel 1×1-output LeNet layer and VGG-11's narrow deep layers run in
reasonable time.

The functional simulator (``repro.core.controller``) charges cycles using
these same functions, so analytic estimates and functional runs agree
exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.calibration import DEFAULT_LATENCY, LatencyCalibration
from repro.core.config import AcceleratorConfig
from repro.errors import CompilationError
from repro.snn.spec import (
    FlattenSpec,
    QuantConvSpec,
    QuantLinearSpec,
    QuantPoolSpec,
    QuantizedNetwork,
)

__all__ = [
    "channels_per_pass",
    "conv_group_count",
    "conv_pass_cycles",
    "conv_layer_cycles",
    "pool_layer_cycles",
    "linear_layer_cycles",
    "flatten_cycles",
    "input_load_cycles",
    "dram_stream_cycles",
    "LatencyModel",
    "LayerLatency",
]


def _ceil_div(a: int, b: int) -> int:
    return -(-a // b)


def channels_per_pass(spec: QuantConvSpec,
                      config: AcceleratorConfig) -> int:
    """Output channels one unit computes simultaneously (channel packing).

    The shift register spans ``R = X + Kc − 1`` positions; ``p`` whole
    padded input rows fit side by side, each feeding a slot of ``W_out``
    adder columns.  The packed slots must also fit the ``X`` columns.
    """
    kr, kc = spec.kernel_size
    _, h_out, w_out = spec.out_shape
    _, _, w_in = spec.in_shape
    w_padded = w_in + 2 * spec.padding
    register_length = config.conv_unit.columns + kc - 1
    if w_out > config.conv_unit.columns:
        raise CompilationError(
            f"conv output rows of width {w_out} exceed the unit's "
            f"{config.conv_unit.columns} columns; the design does not tile "
            "feature maps — configure a wider unit"
        )
    by_register = max(register_length // w_padded, 1)
    by_columns = max(config.conv_unit.columns // w_out, 1)
    return min(by_register, by_columns, spec.out_shape[0])


def conv_group_count(spec: QuantConvSpec, config: AcceleratorConfig) -> int:
    """Sequential output-channel groups ``G = ceil(C_out / (U · p))``."""
    p = channels_per_pass(spec, config)
    return _ceil_div(spec.out_shape[0], config.num_conv_units * p)


def conv_pass_cycles(
    spec: QuantConvSpec,
    cal: LatencyCalibration = DEFAULT_LATENCY,
) -> int:
    """Cycles for one (group, time-step, input-channel) row sweep."""
    kr, kc = spec.kernel_size
    _, h_in, _ = spec.in_shape
    h_padded = h_in + 2 * spec.padding
    return h_padded * (kc + cal.conv_row_overhead) + cal.conv_channel_fill


def conv_layer_cycles(
    spec: QuantConvSpec,
    config: AcceleratorConfig,
    cal: LatencyCalibration = DEFAULT_LATENCY,
    num_steps: int | None = None,
) -> int:
    """Total cycles of a convolution layer on ``U`` parallel units."""
    t = num_steps if num_steps is not None else 1
    groups = conv_group_count(spec, config)
    c_in = spec.in_shape[0]
    per_cin = conv_pass_cycles(spec, cal)
    per_group_step = c_in * per_cin + cal.conv_pass_setup
    return groups * t * per_group_step + cal.layer_setup


def pool_layer_cycles(
    spec: QuantPoolSpec,
    config: AcceleratorConfig,
    cal: LatencyCalibration = DEFAULT_LATENCY,
    num_steps: int | None = None,
) -> int:
    """Total cycles of a pooling layer (single unit, channel-serial)."""
    t = num_steps if num_steps is not None else 1
    c, h_in, w_in = spec.in_shape
    if spec.out_shape[2] > config.pool_unit.columns:
        raise CompilationError(
            f"pooled rows of width {spec.out_shape[2]} exceed the pool "
            f"unit's {config.pool_unit.columns} columns"
        )
    per_channel = h_in * (spec.size + cal.pool_row_overhead)
    return (c * t * (per_channel + cal.pool_pass_setup)
            + cal.layer_setup)


def linear_layer_cycles(
    spec: QuantLinearSpec,
    config: AcceleratorConfig,
    cal: LatencyCalibration = DEFAULT_LATENCY,
    num_steps: int | None = None,
) -> int:
    """Total cycles of a fully-connected layer (weight-fetch bound)."""
    t = num_steps if num_steps is not None else 1
    blocks = _ceil_div(spec.out_features,
                       config.linear_unit.parallel_outputs)
    per_step = blocks * (spec.in_features + cal.linear_block_flush)
    return t * (per_step + cal.linear_pass_setup) + cal.layer_setup


def flatten_cycles(
    spec: FlattenSpec,
    config: AcceleratorConfig,
    num_steps: int,
) -> int:
    """2-D → 1-D buffer transfer: a burst of the spike-train bits."""
    bits = spec.out_features * num_steps
    return _ceil_div(bits, config.memory.bram_width_bits)


def input_load_cycles(
    input_shape: tuple[int, int, int],
    cal: LatencyCalibration,
    num_steps: int,
) -> int:
    """Loading the encoded input image into the ping-pong buffer."""
    c, h, w = input_shape
    return c * h * num_steps * cal.input_row_load


def dram_stream_cycles(param_bits: int, config: AcceleratorConfig) -> int:
    """Streaming one layer's parameters from DRAM before computing it."""
    transfer = _ceil_div(param_bits, config.memory.dram_bandwidth_bits)
    return transfer + config.memory.dram_burst_setup_cycles


@dataclass(frozen=True)
class LayerLatency:
    """Cycle breakdown for one layer."""

    name: str
    kind: str
    compute_cycles: int
    dram_cycles: int

    @property
    def total_cycles(self) -> int:
        return self.compute_cycles + self.dram_cycles


class LatencyModel:
    """Whole-network latency estimation for a given configuration."""

    def __init__(
        self,
        config: AcceleratorConfig,
        calibration: LatencyCalibration = DEFAULT_LATENCY,
    ) -> None:
        self.config = config
        self.calibration = calibration

    def layer_latencies(
        self,
        network: QuantizedNetwork,
        weights_on_chip: bool = True,
    ) -> list[LayerLatency]:
        """Per-layer cycle breakdown for one inference."""
        t = network.num_steps
        cal = self.calibration
        out: list[LayerLatency] = []
        out.append(LayerLatency(
            name="input", kind="input",
            compute_cycles=input_load_cycles(network.input_shape, cal, t),
            dram_cycles=0,
        ))
        conv_idx = pool_idx = linear_idx = 0
        for spec in network.layers:
            dram = 0
            if spec.kind == "conv":
                conv_idx += 1
                name = f"conv{conv_idx}"
                cycles = conv_layer_cycles(spec, self.config, cal, t)
                if not weights_on_chip:
                    dram = dram_stream_cycles(
                        spec.num_weights * network.weight_bits, self.config)
            elif spec.kind == "pool":
                pool_idx += 1
                name = f"pool{pool_idx}"
                cycles = pool_layer_cycles(spec, self.config, cal, t)
            elif spec.kind == "flatten":
                name = "flatten"
                cycles = flatten_cycles(spec, self.config, t)
            else:
                linear_idx += 1
                name = f"fc{linear_idx}"
                cycles = linear_layer_cycles(spec, self.config, cal, t)
                if not weights_on_chip:
                    dram = dram_stream_cycles(
                        spec.num_weights * network.weight_bits, self.config)
            out.append(LayerLatency(name=name, kind=spec.kind,
                                    compute_cycles=cycles, dram_cycles=dram))
        return out

    def total_cycles(self, network: QuantizedNetwork,
                     weights_on_chip: bool = True) -> int:
        """Cycles for one full inference."""
        return sum(l.total_cycles
                   for l in self.layer_latencies(network, weights_on_chip))

    def latency_us(self, network: QuantizedNetwork,
                   weights_on_chip: bool = True) -> float:
        """End-to-end latency in microseconds at the configured clock."""
        return (self.total_cycles(network, weights_on_chip)
                * self.config.cycle_time_us)

    def throughput_fps(self, network: QuantizedNetwork,
                       weights_on_chip: bool = True) -> float:
        """Frames per second (single-frame, non-pipelined, as the paper)."""
        return 1e6 / self.latency_us(network, weights_on_chip)

"""Activity-based energy breakdown.

The top-level power model (``repro.core.power``) reproduces the paper's
measured wall-power numbers; this module complements it with a bottom-up
energy breakdown from the activity counters the functional simulator
collects — adder operations, BRAM/DRAM traffic — using per-operation
energy constants typical for a 16 nm FPGA fabric.  It quantifies the two
efficiency arguments of the paper:

* adders instead of multipliers/DSP slices (per-op energy ~10× lower),
* short radix trains and row reuse (fewer operations and memory touches).

Absolute joule numbers from per-op constants are order-of-magnitude
estimates; the value is in the *relative* breakdown and in comparing
configurations, which is how the ablation benchmarks use them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.controller import ExecutionTrace
from repro.core.engine.trace import TraceMerge

__all__ = ["EnergyConstants", "EnergyBreakdown", "trace_energy"]


@dataclass(frozen=True)
class EnergyConstants:
    """Per-operation energy, picojoules (16 nm FPGA fabric estimates)."""

    adder_op_pj: float = 0.4          # 18-bit add in carry logic
    multiplier_op_pj: float = 4.5     # DSP multiply-accumulate (baseline)
    bram_bit_pj: float = 0.15         # one bit through a BRAM port
    dram_bit_pj: float = 20.0         # one bit through the DRAM interface
    accumulator_write_pj: float = 1.2


@dataclass(frozen=True)
class EnergyBreakdown:
    """Energy per inference, split by mechanism (picojoules)."""

    compute_pj: float
    onchip_memory_pj: float
    dram_pj: float
    accumulator_pj: float

    @property
    def total_pj(self) -> float:
        return (self.compute_pj + self.onchip_memory_pj + self.dram_pj
                + self.accumulator_pj)

    @property
    def total_uj(self) -> float:
        return self.total_pj * 1e-6

    def dominant(self) -> str:
        """Which mechanism dominates (for reports)."""
        parts = {
            "compute": self.compute_pj,
            "onchip_memory": self.onchip_memory_pj,
            "dram": self.dram_pj,
            "accumulator": self.accumulator_pj,
        }
        return max(parts, key=parts.get)


def trace_energy(
    trace: ExecutionTrace | TraceMerge,
    constants: EnergyConstants | None = None,
    weight_bits: int = 3,
) -> EnergyBreakdown:
    """Energy breakdown of one trace or of a multi-image aggregate.

    Accepts a single :class:`ExecutionTrace` or a
    :class:`~repro.core.engine.trace.TraceMerge`; for the latter the
    breakdown covers all merged images (divide by ``num_images`` for a
    per-inference figure).  Deriving energy from the merged *integer*
    counters — instead of summing per-shard floats — keeps sharded sweep
    results bit-identical to single-process runs.
    """
    constants = constants or EnergyConstants()
    traffic = trace.total_traffic()
    compute = trace.total_adder_ops * constants.adder_op_pj
    onchip = (traffic.total_activation_bits
              + traffic.kernel_read_values * weight_bits) \
        * constants.bram_bit_pj
    dram = traffic.weight_stream_bits * constants.dram_bit_pj
    # Every activation write lands in an accumulator slot first, so the
    # merged write counter equals the per-layer sum of a single trace.
    accumulator = (traffic.activation_write_bits
                   * constants.accumulator_write_pj)
    return EnergyBreakdown(
        compute_pj=compute,
        onchip_memory_pj=onchip,
        dram_pj=dram,
        accumulator_pj=accumulator,
    )

"""Accelerator configuration.

The paper's accelerator is parameterized by a handful of architectural
knobs, all captured here:

* number of convolution units and their adder-array geometry ``(X, Y)``
  (Fig. 2: ``Y`` = kernel rows computed in parallel, ``X`` = output columns
  processed in parallel, chosen ≥ the widest output row to avoid tiling),
* the pooling unit geometry,
* the linear unit's output parallelism (set by weight-memory bandwidth),
* clock frequency, spike-train length, weight resolution,
* memory parameters (on-chip weight capacity threshold, DRAM bandwidth).

``for_network`` derives a sensible configuration from a compiled network's
geometry, mirroring how the paper sizes ``(X, Y)`` "according to the
network configuration".
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.errors import ConfigurationError
from repro.snn.spec import QuantizedNetwork

__all__ = [
    "ConvUnitConfig",
    "PoolUnitConfig",
    "LinearUnitConfig",
    "MemoryConfig",
    "AcceleratorConfig",
]


@dataclass(frozen=True)
class ConvUnitConfig:
    """Geometry of one convolution unit's adder array (Fig. 2)."""

    columns: int  # X — parallel output positions
    rows: int     # Y — kernel rows, pipelined top-to-bottom

    def __post_init__(self) -> None:
        if self.columns < 1 or self.rows < 1:
            raise ConfigurationError(
                f"conv unit geometry must be positive, got "
                f"(X={self.columns}, Y={self.rows})"
            )

    @property
    def num_adders(self) -> int:
        return self.columns * self.rows

    def channels_per_unit(self, out_width: int) -> int:
        """How many output channels share the unit (channel packing).

        The paper: "multiple output channels can share a single convolution
        unit, if their size permits" — i.e. ``floor(X / W_out)``, at least
        one (a too-narrow X would force feature-map tiling, which the
        design explicitly avoids by construction).
        """
        if out_width > self.columns:
            raise ConfigurationError(
                f"output row of width {out_width} exceeds the unit's "
                f"{self.columns} columns; the design does not tile feature "
                "maps — configure a wider unit"
            )
        return max(self.columns // out_width, 1)


@dataclass(frozen=True)
class PoolUnitConfig:
    """Geometry of the pooling unit (same row-based structure, no kernels)."""

    columns: int
    rows: int

    def __post_init__(self) -> None:
        if self.columns < 1 or self.rows < 1:
            raise ConfigurationError(
                f"pool unit geometry must be positive, got "
                f"(X={self.columns}, Y={self.rows})"
            )


@dataclass(frozen=True)
class LinearUnitConfig:
    """The linear unit: one adder row fed by streamed weights.

    ``parallel_outputs`` is "proportional to the available memory
    bandwidth": with a 64-bit weight port and 3-bit weights, 21 weights
    arrive per cycle, hence the default.
    """

    parallel_outputs: int = 21

    def __post_init__(self) -> None:
        if self.parallel_outputs < 1:
            raise ConfigurationError(
                "linear unit needs at least one parallel output"
            )


@dataclass(frozen=True)
class MemoryConfig:
    """Memory-system parameters.

    ``onchip_weight_capacity`` implements the paper's two weight-storage
    options: models whose parameters fit stay fully on-chip, larger ones
    (VGG-11) stream each layer's weights from DRAM before computing it.
    """

    onchip_weight_capacity: int = 8 * 1024 * 1024   # bytes of BRAM weights
    activation_capacity: int = 8 * 1024 * 1024      # bytes for ping-pong
    dram_bandwidth_bits: int = 64                   # bits per cycle
    dram_burst_setup_cycles: int = 32               # per-transfer setup
    bram_width_bits: int = 36                       # one BRAM36 port
    bram_block_bits: int = 36 * 1024                # BRAM36 capacity

    def __post_init__(self) -> None:
        if self.onchip_weight_capacity < 0:
            raise ConfigurationError("weight capacity cannot be negative")
        if self.dram_bandwidth_bits < 1:
            raise ConfigurationError("DRAM bandwidth must be positive")


@dataclass(frozen=True)
class AcceleratorConfig:
    """Top-level accelerator instance description."""

    num_conv_units: int = 2
    conv_unit: ConvUnitConfig = field(
        default_factory=lambda: ConvUnitConfig(columns=30, rows=5))
    pool_unit: PoolUnitConfig = field(
        default_factory=lambda: PoolUnitConfig(columns=14, rows=2))
    linear_unit: LinearUnitConfig = field(default_factory=LinearUnitConfig)
    memory: MemoryConfig = field(default_factory=MemoryConfig)
    clock_mhz: float = 100.0
    weight_bits: int = 3
    accumulator_bits: int = 18

    def __post_init__(self) -> None:
        if self.num_conv_units < 1:
            raise ConfigurationError("need at least one convolution unit")
        if self.clock_mhz <= 0:
            raise ConfigurationError(
                f"clock must be positive, got {self.clock_mhz} MHz"
            )
        if self.weight_bits < 2:
            raise ConfigurationError("weights need at least 2 bits")

    @property
    def cycle_time_us(self) -> float:
        """Duration of one clock cycle in microseconds."""
        return 1.0 / self.clock_mhz

    def with_units(self, num_conv_units: int) -> "AcceleratorConfig":
        """Copy with a different convolution-unit count (Table II sweeps)."""
        return replace(self, num_conv_units=num_conv_units)

    def with_clock(self, clock_mhz: float) -> "AcceleratorConfig":
        """Copy with a different clock frequency."""
        return replace(self, clock_mhz=clock_mhz)

    @classmethod
    def for_network(
        cls,
        network: QuantizedNetwork,
        num_conv_units: int = 2,
        clock_mhz: float = 100.0,
    ) -> "AcceleratorConfig":
        """Size units from the network, as the paper does.

        ``X`` becomes the widest convolution output row (so no feature map
        is ever tiled), ``Y`` the largest kernel-row count; the pooling
        unit likewise covers the widest pooled row.
        """
        convs = network.conv_layers()
        pools = network.pool_layers()
        conv_x = max((c.out_shape[2] for c in convs), default=30)
        conv_y = max((c.kernel_size[0] for c in convs), default=5)
        pool_x = max((p.out_shape[2] for p in pools), default=14)
        pool_y = max((p.size for p in pools), default=2)
        return cls(
            num_conv_units=num_conv_units,
            conv_unit=ConvUnitConfig(columns=conv_x, rows=conv_y),
            pool_unit=PoolUnitConfig(columns=pool_x, rows=pool_y),
            clock_mhz=clock_mhz,
            weight_bits=network.weight_bits,
        )

"""Ping-pong activation buffers (Fig. 1, blue).

Activations live entirely on-chip: each layer reads its input from one
bank and writes its output to the other, then the banks swap.  There are
two independent pairs — a 2-D pair for feature maps (conv/pool layers) and
a 1-D pair for flattened vectors (fully-connected layers) — with a one-way
handoff at the flatten point.

The model tracks occupancy in bits (activations are stored as ``T``-bit
radix trains), enforces capacity, and records the high-water marks the
BRAM sizing uses: "the width and height of the buffers are determined in a
way that minimizes their size while allowing the activations of all
relevant layers to fit".
"""

from __future__ import annotations

import numpy as np

from repro.errors import CapacityError, SimulationError

__all__ = ["PingPongBuffer", "BufferPair"]


class PingPongBuffer:
    """One bank pair with alternating read/write roles."""

    def __init__(self, name: str, capacity_bits: int) -> None:
        if capacity_bits < 1:
            raise CapacityError(
                f"buffer {name!r} needs positive capacity"
            )
        self.name = name
        self.capacity_bits = capacity_bits
        self._banks: list[np.ndarray | None] = [None, None]
        self._bits: list[int] = [0, 0]
        self._write_bank = 0
        self.peak_bits = 0
        self.swaps = 0

    @property
    def write_bank(self) -> int:
        return self._write_bank

    @property
    def read_bank(self) -> int:
        return 1 - self._write_bank

    def write(self, data: np.ndarray, bits_per_element: int) -> None:
        """Store a layer's output tensor into the current write bank."""
        bits = int(data.size) * bits_per_element
        if bits > self.capacity_bits:
            raise CapacityError(
                f"{self.name}: tensor of {bits} bits exceeds bank capacity "
                f"{self.capacity_bits}"
            )
        self._banks[self._write_bank] = data
        self._bits[self._write_bank] = bits
        self.peak_bits = max(self.peak_bits, bits)

    def read(self) -> np.ndarray:
        """Read the previous layer's output from the read bank."""
        data = self._banks[self.read_bank]
        if data is None:
            raise SimulationError(
                f"{self.name}: read bank is empty (no layer has written yet)"
            )
        return data

    def swap(self) -> None:
        """Alternate the banks after a layer completes."""
        self._write_bank = 1 - self._write_bank
        self.swaps += 1

    def prime(self, data: np.ndarray, bits_per_element: int) -> None:
        """Load initial data (the encoded input image) and swap once so it
        becomes readable."""
        self.write(data, bits_per_element)
        self.swap()


class BufferPair:
    """The accelerator's two buffer pairs plus the flatten handoff."""

    def __init__(self, capacity_2d_bits: int, capacity_1d_bits: int) -> None:
        self.planar = PingPongBuffer("activations-2d", capacity_2d_bits)
        self.flat = PingPongBuffer("activations-1d", capacity_1d_bits)

    def flatten_handoff(self, bits_per_element: int) -> np.ndarray:
        """Move the current 2-D output into the 1-D pair, flattened."""
        maps = self.planar.read()
        vector = maps.reshape(maps.shape[0], -1) if maps.ndim > 1 else maps
        self.flat.prime(vector, bits_per_element)
        return vector

    @property
    def total_peak_bits(self) -> int:
        """Worst-case occupancy over both pairs (×2 banks each)."""
        return 2 * (self.planar.peak_bits + self.flat.peak_bits)

"""Output logic: accumulation across input channels and time steps
(Fig. 2, bottom).

The adder array produces one output row's partial sums per pass, covering
one (input channel, time step) combination.  The output logic owns the
full-precision accumulator that folds these together:

* within a time step, partial sums of successive input channels add up;
* between time steps the whole accumulator left-shifts once — this is the
  radix weighting (a spike at step ``t`` ends up scaled ``2**(T-1-t)``);
* after the last step, bias is added and the result passes through
  ReLU + requantization back to a ``T``-bit activation.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError, SimulationError
from repro.snn.spec import requantize

__all__ = ["OutputAccumulator"]


class OutputAccumulator:
    """Full-precision accumulator for one processing-unit pass."""

    def __init__(self, num_channels: int, height: int, width: int) -> None:
        if min(num_channels, height, width) < 1:
            raise ShapeError(
                "accumulator dimensions must be positive, got "
                f"({num_channels}, {height}, {width})"
            )
        self.shape = (num_channels, height, width)
        self._acc = np.zeros(self.shape, dtype=np.int64)
        self._steps_seen = 0
        self.writes = 0  # accumulator write operations (traffic proxy)

    def begin_time_step(self) -> None:
        """Left-shift the accumulator before integrating a new time step.

        Called at the start of every step; the shift is skipped for the
        first one (shifting zero is a no-op, mirroring Alg. 1 line 12
        placed between step iterations).
        """
        if self._steps_seen > 0:
            self._acc <<= 1
        self._steps_seen += 1

    def add_row(self, channel: int, row: int, values: np.ndarray) -> None:
        """Accumulate one completed output row from the adder array."""
        if not 0 <= channel < self.shape[0]:
            raise ShapeError(f"channel {channel} out of range {self.shape}")
        if not 0 <= row < self.shape[1]:
            raise ShapeError(f"row {row} out of range {self.shape}")
        values = np.asarray(values)
        if values.shape != (self.shape[2],):
            raise ShapeError(
                f"expected row of width {self.shape[2]}, got {values.shape}"
            )
        if self._steps_seen == 0:
            raise SimulationError("add_row before begin_time_step")
        self._acc[channel, row] += values
        self.writes += 1

    def finalize(
        self,
        bias: np.ndarray,
        scales: np.ndarray,
        num_steps: int,
    ) -> np.ndarray:
        """Bias add + ReLU + requantize; returns ``T``-bit activations."""
        if self._steps_seen != num_steps:
            raise SimulationError(
                f"finalize after {self._steps_seen} steps, expected "
                f"{num_steps}"
            )
        bias = np.asarray(bias)
        if bias.shape != (self.shape[0],):
            raise ShapeError(
                f"expected one bias per channel, got {bias.shape}"
            )
        acc = self._acc + bias.reshape(-1, 1, 1)
        return requantize(acc, scales, num_steps, channel_axis=0)

    def raw(self) -> np.ndarray:
        """The raw full-precision accumulator (classifier head output)."""
        return self._acc.copy()

"""Layer-overlap extensions: DRAM prefetch and frame pipelining.

Two optimizations the paper's design leaves on the table (its DRAM option
fetches each layer's weights strictly *before* computing that layer, and
frames run strictly back to back).  Both are modelled here as what-if
analyses on top of the calibrated latency model:

* **weight prefetch** — stream layer ``l+1``'s weights *during* layer
  ``l``'s compute; only the non-overlappable remainder stalls.  For
  VGG-11 this hides most of the 1.3M-cycle DRAM time behind the much
  longer compute.
* **frame pipelining** — with doubled ping-pong buffers, frame ``k+1``
  can enter layer 1 while frame ``k`` occupies later layers; steady-state
  throughput is then set by the slowest layer (plus its DRAM residue),
  not the end-to-end latency.

These are *estimates of an extension*, clearly separated from the
reproduction of the paper's published numbers — the ablation benchmark
reports both side by side.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.calibration import DEFAULT_LATENCY, LatencyCalibration
from repro.core.config import AcceleratorConfig
from repro.core.latency import LatencyModel
from repro.snn.spec import QuantizedNetwork

__all__ = ["OverlapEstimate", "prefetch_latency", "pipelined_throughput"]


@dataclass(frozen=True)
class OverlapEstimate:
    """Before/after numbers for one overlap optimization."""

    baseline_cycles: int
    optimized_cycles: int

    @property
    def saving_fraction(self) -> float:
        if self.baseline_cycles == 0:
            return 0.0
        return 1.0 - self.optimized_cycles / self.baseline_cycles


def prefetch_latency(
    network: QuantizedNetwork,
    config: AcceleratorConfig,
    calibration: LatencyCalibration = DEFAULT_LATENCY,
) -> OverlapEstimate:
    """Latency with next-layer weight prefetch overlapped onto compute.

    Layer ``l+1``'s DRAM stream runs concurrently with layer ``l``'s
    compute; the stall charged is ``max(0, dram_{l+1} - compute_l)``.
    The first layer's weights cannot be hidden.
    """
    model = LatencyModel(config, calibration)
    layers = model.layer_latencies(network, weights_on_chip=False)
    baseline = sum(l.total_cycles for l in layers)

    # Walk consecutive pairs: the previous layer's compute hides (part of)
    # the current layer's weight stream.  The first layer hides nothing.
    optimized = layers[0].total_cycles
    for prev, curr in zip(layers, layers[1:]):
        hidden = min(curr.dram_cycles, prev.compute_cycles)
        optimized += curr.compute_cycles + (curr.dram_cycles - hidden)
    return OverlapEstimate(baseline_cycles=baseline,
                           optimized_cycles=optimized)


def pipelined_throughput(
    network: QuantizedNetwork,
    config: AcceleratorConfig,
    weights_on_chip: bool = True,
    calibration: LatencyCalibration = DEFAULT_LATENCY,
) -> OverlapEstimate:
    """Steady-state frame interval under layer pipelining.

    With per-layer double buffering, consecutive frames overlap; the
    initiation interval is the slowest single layer.  Expressed as
    cycles-per-frame so it compares directly with the baseline latency.
    """
    model = LatencyModel(config, calibration)
    layers = model.layer_latencies(network, weights_on_chip)
    baseline = sum(l.total_cycles for l in layers)
    interval = max(l.total_cycles for l in layers)
    return OverlapEstimate(baseline_cycles=baseline,
                           optimized_cycles=interval)

"""Off-chip DRAM model.

Used only when a network's parameters exceed the on-chip weight capacity
(VGG-11 in the paper): each layer's weights are streamed in *before* that
layer computes, so transfer cycles add directly to latency.  The model
tracks transfer cycles and total traffic for the power/energy accounting.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import MemoryConfig
from repro.errors import ShapeError

__all__ = ["DramModel", "DramTransfer"]


@dataclass(frozen=True)
class DramTransfer:
    """One completed weight-stream transfer."""

    label: str
    bits: int
    cycles: int


@dataclass
class DramModel:
    """Bandwidth/burst accounting for the weight-streaming path."""

    memory: MemoryConfig
    transfers: list[DramTransfer] = field(default_factory=list)

    def stream(self, label: str, bits: int) -> int:
        """Stream ``bits`` of parameters; returns the cycles it took."""
        if bits < 0:
            raise ShapeError(f"cannot stream a negative bit count: {bits}")
        if bits == 0:
            return 0
        cycles = (-(-bits // self.memory.dram_bandwidth_bits)
                  + self.memory.dram_burst_setup_cycles)
        self.transfers.append(DramTransfer(label=label, bits=bits,
                                           cycles=cycles))
        return cycles

    @property
    def total_cycles(self) -> int:
        return sum(t.cycles for t in self.transfers)

    @property
    def total_bits(self) -> int:
        return sum(t.bits for t in self.transfers)

    @property
    def was_used(self) -> bool:
        return bool(self.transfers)

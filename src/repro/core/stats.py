"""Execution statistics collected by the functional hardware model."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["UnitStats", "MemoryTraffic"]


@dataclass
class MemoryTraffic:
    """Bit/value-level memory access counters (the dataflow-ablation data)."""

    activation_read_bits: int = 0
    activation_write_bits: int = 0
    kernel_read_values: int = 0
    weight_stream_bits: int = 0   # DRAM traffic, when weights are off-chip

    def merge(self, other: "MemoryTraffic") -> None:
        self.activation_read_bits += other.activation_read_bits
        self.activation_write_bits += other.activation_write_bits
        self.kernel_read_values += other.kernel_read_values
        self.weight_stream_bits += other.weight_stream_bits

    @property
    def total_activation_bits(self) -> int:
        return self.activation_read_bits + self.activation_write_bits


@dataclass
class UnitStats:
    """Per-pass cost accounting from a processing unit."""

    cycles: int = 0
    adder_ops: int = 0
    accumulator_writes: int = 0
    traffic: MemoryTraffic = field(default_factory=MemoryTraffic)

    def merge(self, other: "UnitStats") -> None:
        self.cycles += other.cycles
        self.adder_ops += other.adder_ops
        self.accumulator_writes += other.accumulator_writes
        self.traffic.merge(other.traffic)

"""The two-dimensional adder array at the heart of a convolution unit
(Fig. 2, green/yellow).

Geometry: ``Y`` rows of ``X`` adders.  Row ``y`` applies kernel row ``y``;
all rows read the *same* input shift register, because when the register
holds input row ``r``, adder row ``y`` is accumulating output row ``r - y``
— one fetched input row therefore serves all ``Y`` kernel rows at once,
which is the activation reuse the paper credits for its reduced memory
traffic.

Per shift cycle, every adder either adds its current kernel value (input
spike present) or zero (the gray multiplexer in Fig. 2).  After the ``Kc``
shifts of a row pass, partial sums propagate one row down; sums leaving the
bottom row have seen all ``Kr × Kc`` kernel values and are complete
convolution outputs for one feature-map row.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError, SimulationError

__all__ = ["AdderArray"]


class AdderArray:
    """Functional model of the ``Y × X`` pipelined adder array."""

    def __init__(self, columns: int, rows: int) -> None:
        if columns < 1 or rows < 1:
            raise ShapeError(
                f"array geometry must be positive, got ({columns}, {rows})"
            )
        self.columns = columns
        self.rows = rows
        self._partials = np.zeros((rows, columns), dtype=np.int64)
        self.adder_ops = 0  # additions actually performed (spikes present)
        self.cycles = 0     # shift cycles executed

    def reset(self) -> None:
        """Clear pipeline state between passes."""
        self._partials.fill(0)

    def step(self, spikes: np.ndarray, kernel_column: np.ndarray) -> None:
        """One shift cycle: conditionally add a kernel value per adder.

        Parameters
        ----------
        spikes:
            Binary vector of length ``X`` — the shift-register taps, shared
            by all adder rows.
        kernel_column:
            ``(Y, X)`` kernel values currently presented to the adders
            (row ``y`` holds values from kernel row ``y``; with channel
            packing, different column slots carry different channels'
            kernels).
        """
        spikes = np.asarray(spikes)
        if spikes.shape != (self.columns,):
            raise ShapeError(
                f"expected {self.columns} spike taps, got {spikes.shape}"
            )
        kernel_column = np.asarray(kernel_column)
        if kernel_column.shape != (self.rows, self.columns):
            raise ShapeError(
                f"expected kernel values of shape ({self.rows}, "
                f"{self.columns}), got {kernel_column.shape}"
            )
        if spikes.size and int(spikes.max(initial=0)) > 1:
            raise SimulationError("adder array input must be binary spikes")
        active = spikes.astype(bool)
        self._partials[:, active] += kernel_column[:, active]
        self.adder_ops += int(active.sum()) * self.rows
        self.cycles += 1

    def advance(self) -> np.ndarray:
        """End of a row pass: emit the bottom row, shift partials down.

        Returns the completed partial sums (length ``X``); the top row is
        cleared for the next output row entering the pipeline.
        """
        completed = self._partials[-1].copy()
        self._partials[1:] = self._partials[:-1]
        self._partials[0] = 0
        return completed

    @property
    def partials(self) -> np.ndarray:
        """Current pipeline contents (for tests and diagrams)."""
        return self._partials.copy()

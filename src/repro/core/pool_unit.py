"""Functional model of the pooling unit.

Same row-based structure as a convolution unit but without kernel values
(the adders sum window inputs directly) and without cross-channel output
logic — pooling touches each channel independently.  The divide by the
window size is an exact right shift, applied to the radix accumulator
after all time steps, which the tests show is bit-exact to the reference
integer pooling.
"""

from __future__ import annotations

import numpy as np

from repro.core.calibration import DEFAULT_LATENCY, LatencyCalibration
from repro.core.config import AcceleratorConfig
from repro.core.stats import UnitStats
from repro.errors import ShapeError
from repro.snn.spec import QuantPoolSpec

__all__ = ["PoolUnit"]


class PoolUnit:
    """The (single) pooling unit."""

    def __init__(
        self,
        config: AcceleratorConfig,
        calibration: LatencyCalibration = DEFAULT_LATENCY,
    ) -> None:
        self.config = config
        self.calibration = calibration

    def run_layer(
        self,
        spec: QuantPoolSpec,
        input_bits: np.ndarray,
        num_steps: int,
    ) -> tuple[np.ndarray, UnitStats]:
        """Pool a whole layer; returns ``(C, H_out, W_out)`` activations."""
        c, h_in, w_in = spec.in_shape
        _, h_out, w_out = spec.out_shape
        if input_bits.shape != (num_steps, c, h_in, w_in):
            raise ShapeError(
                f"input bits {input_bits.shape} do not match layer input "
                f"(T={num_steps}, {spec.in_shape})"
            )
        if w_out > self.config.pool_unit.columns:
            raise ShapeError(
                f"pooled rows of width {w_out} exceed the pool unit's "
                f"{self.config.pool_unit.columns} columns"
            )
        stats = UnitStats()
        cal = self.calibration
        size, stride = spec.size, spec.stride
        acc = np.zeros((c, h_out, w_out), dtype=np.int64)
        for step in range(num_steps):
            if step > 0:
                acc <<= 1
            for ch in range(c):
                plane = input_bits[step, ch].astype(np.int64)
                # Row-based window sums: adder row y accumulates input row
                # y of each window; X columns cover the output row.
                for oy in range(h_out):
                    rows = plane[oy * stride:oy * stride + size]
                    col_sum = rows.sum(axis=0)
                    window = np.zeros(w_out, dtype=np.int64)
                    for dx in range(size):
                        window += col_sum[dx:dx + stride * w_out:stride]
                    acc[ch, oy] += window
                    stats.adder_ops += int(rows.sum())
                stats.traffic.activation_read_bits += h_in * w_in
                stats.cycles += (h_in * (size + cal.pool_row_overhead)
                                 + cal.pool_pass_setup)
        out = acc >> spec.shift
        stats.traffic.activation_write_bits = int(out.size * num_steps)
        stats.accumulator_writes = int(c * h_out * num_steps)
        return out, stats

"""FPGA resource model (LUTs / FFs / BRAM blocks).

Bottom-up: each convolution unit's cost follows from its geometry — an
``X × Y`` array of accumulator-width adders built in carry logic (no DSPs,
as the paper stresses), per-adder kernel registers and spike multiplexers,
the row-wide shift register, and per-column output accumulators — plus a
fixed base for the controller, the pooling and linear units and buffer
addressing, a small superlinear interconnect term, and the DRAM controller
when weight streaming is compiled in.  Constants are calibrated so the
Table II sweep (11k/15k/24k/42k LUTs, 10k/14k/23k/39k FFs for U=1/2/4/8)
is reproduced in shape; see ``repro.core.calibration``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.calibration import DEFAULT_RESOURCES, ResourceCalibration
from repro.core.config import AcceleratorConfig

__all__ = ["ResourceEstimate", "ResourceModel"]


@dataclass(frozen=True)
class ResourceEstimate:
    """LUT/FF totals with the per-component breakdown kept for reports."""

    luts: int
    ffs: int
    conv_unit_luts: int
    conv_unit_ffs: int
    base_luts: int
    base_ffs: int
    dram_luts: int
    dram_ffs: int


class ResourceModel:
    """Estimates LUT/FF usage of a configured accelerator."""

    def __init__(
        self,
        config: AcceleratorConfig,
        calibration: ResourceCalibration = DEFAULT_RESOURCES,
    ) -> None:
        self.config = config
        self.calibration = calibration

    def conv_unit_luts(self) -> int:
        """LUTs of one convolution unit, from its geometry."""
        cal = self.calibration
        unit = self.config.conv_unit
        acc_bits = self.config.accumulator_bits
        adders = unit.num_adders * acc_bits * cal.luts_per_adder_bit
        muxes = unit.num_adders * cal.luts_per_mux
        output = unit.columns * acc_bits * cal.luts_per_output_bit
        return int(adders + muxes + output + cal.unit_control_luts)

    def conv_unit_ffs(self) -> int:
        """FFs of one convolution unit, from its geometry."""
        cal = self.calibration
        unit = self.config.conv_unit
        acc_bits = self.config.accumulator_bits
        pipeline = unit.num_adders * acc_bits * cal.ffs_per_adder_bit
        kernels = (unit.num_adders * self.config.weight_bits
                   * cal.ffs_per_kernel_bit)
        shift_reg = unit.columns + 16  # row register + handshake
        output = unit.columns * acc_bits * cal.ffs_per_output_bit
        return int(pipeline + kernels + shift_reg + output
                   + cal.unit_control_ffs)

    def pool_unit_luts(self) -> int:
        cal = self.calibration
        unit = self.config.pool_unit
        acc_bits = self.config.accumulator_bits
        return int(unit.columns * unit.rows * acc_bits
                   * cal.luts_per_adder_bit * 0.5 + 150)

    def linear_unit_luts(self) -> int:
        cal = self.calibration
        acc_bits = self.config.accumulator_bits
        return int(self.config.linear_unit.parallel_outputs * acc_bits
                   * cal.luts_per_adder_bit + 200)

    def estimate(self, weights_on_chip: bool = True) -> ResourceEstimate:
        """Full-device LUT/FF estimate."""
        cal = self.calibration
        u = self.config.num_conv_units
        unit_luts = self.conv_unit_luts()
        unit_ffs = self.conv_unit_ffs()
        base_luts = (cal.base_luts + self.pool_unit_luts()
                     + self.linear_unit_luts())
        base_ffs = cal.base_ffs + int(0.8 * (self.pool_unit_luts()
                                             + self.linear_unit_luts()))
        interconnect_luts = int(cal.interconnect_luts_per_unit_sq * u * u)
        interconnect_ffs = int(cal.interconnect_ffs_per_unit_sq * u * u)
        dram_luts = 0 if weights_on_chip else cal.dram_controller_luts
        dram_ffs = 0 if weights_on_chip else cal.dram_controller_ffs
        return ResourceEstimate(
            luts=u * unit_luts + base_luts + interconnect_luts + dram_luts,
            ffs=u * unit_ffs + base_ffs + interconnect_ffs + dram_ffs,
            conv_unit_luts=unit_luts,
            conv_unit_ffs=unit_ffs,
            base_luts=base_luts + interconnect_luts,
            base_ffs=base_ffs + interconnect_ffs,
            dram_luts=dram_luts,
            dram_ffs=dram_ffs,
        )

"""Power model.

``P = P_static + (f / f_ref) · (P_base + P_unit·U + P_bram·Mbit) +
P_dram_if`` — static device power plus frequency-scaled dynamic power of
the processing units, buffers and clock tree, plus the DRAM interface when
weight streaming is compiled in.  Constants are fitted to Table II and
cross-checked against the three "this work" rows of Table III (see
``repro.core.calibration``).

Energy per inference follows as ``P · latency``, which is what the
Section IV-B efficiency argument (shorter spike trains → proportionally
less energy) is about.
"""

from __future__ import annotations

from repro.core.calibration import DEFAULT_POWER, PowerCalibration
from repro.core.config import AcceleratorConfig

__all__ = ["PowerModel"]


class PowerModel:
    """Average-power and energy estimation for one deployment."""

    def __init__(
        self,
        config: AcceleratorConfig,
        calibration: PowerCalibration = DEFAULT_POWER,
    ) -> None:
        self.config = config
        self.calibration = calibration

    def average_power_w(
        self,
        bram_mbit: float = 0.0,
        dram_active: bool = False,
    ) -> float:
        """Average board power in watts during inference."""
        cal = self.calibration
        scale = self.config.clock_mhz / cal.reference_clock_mhz
        dynamic = (
            cal.base_dynamic_w
            + cal.conv_unit_dynamic_w * self.config.num_conv_units
            + cal.bram_dynamic_w_per_mbit * max(bram_mbit, 0.0)
        )
        power = cal.static_w + scale * dynamic
        if dram_active:
            power += cal.dram_interface_w
        return power

    def energy_per_inference_mj(
        self,
        latency_us: float,
        bram_mbit: float = 0.0,
        dram_active: bool = False,
    ) -> float:
        """Energy per frame in millijoules."""
        power = self.average_power_w(bram_mbit, dram_active)
        return power * latency_us * 1e-3

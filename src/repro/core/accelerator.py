"""The accelerator facade: deploy a converted SNN and run or estimate it.

Typical flow (mirrors the paper's):

    >>> snn = ann_to_snn(trained_ann, calibration_set, num_steps=4)
    >>> acc = Accelerator(AcceleratorConfig.for_network(snn.network,
    ...                                                 num_conv_units=4,
    ...                                                 clock_mhz=200.0),
    ...                   backend="vectorized")
    >>> acc.deploy(snn)
    >>> predictions, traces = acc.run(images)       # batched functional sim
    >>> report = acc.report(accuracy=0.991)         # Table III row

``run``/``run_image`` execute the bit-exact functional hardware model on
the selected backend — ``reference`` simulates every register shift,
``vectorized`` computes the identical integer semantics (and identical
traces) with whole-batch tensor ops.  ``report``/``estimate_*`` use the
analytic models and need no data.
"""

from __future__ import annotations

import numpy as np

from repro.core.calibration import DEFAULT_LATENCY, LatencyCalibration
from repro.core.compiler import CompiledModel, compile_network
from repro.core.config import AcceleratorConfig
from repro.core.controller import Controller, ExecutionTrace, TraceMerge
from repro.core.engine import ExecutionEngine, resolve_backend, warm_compile
from repro.core.latency import LatencyModel
from repro.core.power import PowerModel
from repro.core.report import PerformanceReport
from repro.core.resources import ResourceModel
from repro.errors import CompilationError, SimulationError
from repro.snn.model import SNNModel

__all__ = ["Accelerator"]


class Accelerator:
    """A configured instance of the paper's architecture."""

    def __init__(
        self,
        config: AcceleratorConfig,
        backend: str | type[ExecutionEngine] = "reference",
        calibration: LatencyCalibration = DEFAULT_LATENCY,
        warm: bool = False,
    ) -> None:
        self.config = config
        self.calibration = calibration
        self.warm = warm
        self._backend = resolve_backend(backend)  # fail fast on typos
        self.compiled: CompiledModel | None = None
        self._controller: Controller | None = None
        self._model_name = "unnamed"

    @property
    def backend(self) -> str:
        """Name of the selected execution backend."""
        return self._backend.name

    # ------------------------------------------------------------------
    # Deployment
    # ------------------------------------------------------------------
    def deploy(self, snn: SNNModel, name: str = "network") -> CompiledModel:
        """Compile and load a converted SNN onto this accelerator.

        With ``warm=True`` the compile is served from the process-wide
        warm cache (:func:`~repro.core.engine.warm_compile`), so hot
        paths — serving pools, repeated sweeps — deploy the same network
        without recompiling; reuse is bit-identical by contract.
        """
        if self.warm:
            self.compiled = warm_compile(snn.network, self.config)
        else:
            self.compiled = compile_network(snn.network, self.config)
        self._controller = Controller(self.compiled, self.calibration,
                                      backend=self._backend)
        self._model_name = name
        return self.compiled

    def use_backend(
        self, backend: str | type[ExecutionEngine]
    ) -> "Accelerator":
        """Switch execution backend (compiled model is reused); returns self."""
        self._backend = resolve_backend(backend)
        if self.compiled is not None:
            self._controller = Controller(self.compiled, self.calibration,
                                          backend=self._backend)
        return self

    def _require_deployed(self) -> CompiledModel:
        if self.compiled is None or self._controller is None:
            raise CompilationError(
                "no network deployed; call deploy() first")
        return self.compiled

    # ------------------------------------------------------------------
    # Functional execution (bit-exact hardware model)
    # ------------------------------------------------------------------
    def run_image(self, image: np.ndarray) -> tuple[np.ndarray,
                                                    ExecutionTrace]:
        """Infer one ``(C, H, W)`` image through the functional model."""
        self._require_deployed()
        return self._controller.run_image(image)

    def run(self, images: np.ndarray) -> tuple[np.ndarray,
                                               list[ExecutionTrace]]:
        """Infer a batch; returns (predictions, per-image traces).

        On the ``vectorized`` backend the whole batch runs as one set of
        tensor ops; the ``reference`` backend loops the unit models.
        """
        logits, traces = self.run_logits(images)
        return logits.argmax(axis=1).astype(np.int64), traces

    def run_logits(self, images: np.ndarray) -> tuple[np.ndarray,
                                                      list[ExecutionTrace]]:
        """Infer a batch; returns (integer logits, per-image traces)."""
        self._require_deployed()
        return self._controller.run_batch(images)

    def run_images(self, images: np.ndarray) -> tuple[np.ndarray,
                                                      TraceMerge]:
        """Infer a batch; returns (logits, aggregated multi-image trace)."""
        self._require_deployed()
        return self._controller.run_images(images)

    def evaluate(self, dataset, batch_size: int = 256) -> float:
        """Hardware-in-the-loop top-1 accuracy over a dataset.

        Runs every image of ``dataset`` through the functional hardware
        model on the selected backend (use ``vectorized`` for full test
        sets) and scores the argmax of the integer logit accumulators —
        the accelerator's own output stage.  By the engine-equivalence
        contract this equals ``SNNModel.accuracy`` bit-for-bit; the paper
        tables are scored through this path so the hardware model, not
        the SNN shortcut, sees the whole test set.
        """
        self._require_deployed()
        correct = 0
        for images, labels in dataset.batches(batch_size):
            logits, _ = self._controller.run_batch(images)
            correct += int((logits.argmax(axis=1) == labels).sum())
        return correct / max(len(dataset), 1)

    # ------------------------------------------------------------------
    # Analytic estimation (no data required)
    # ------------------------------------------------------------------
    def estimate_cycles(self) -> int:
        compiled = self._require_deployed()
        model = LatencyModel(self.config, self.calibration)
        return model.total_cycles(compiled.network,
                                  compiled.weights_on_chip)

    def estimate_latency_us(self) -> float:
        return self.estimate_cycles() * self.config.cycle_time_us

    def estimate_power_w(self) -> float:
        compiled = self._require_deployed()
        power = PowerModel(self.config)
        return power.average_power_w(
            bram_mbit=compiled.bram.total_mbit,
            dram_active=not compiled.weights_on_chip)

    def estimate_resources(self):
        compiled = self._require_deployed()
        return ResourceModel(self.config).estimate(
            compiled.weights_on_chip)

    def report(self, accuracy: float | None = None) -> PerformanceReport:
        """The Table III row for this deployment."""
        compiled = self._require_deployed()
        cycles = self.estimate_cycles()
        if cycles <= 0:
            raise SimulationError(
                f"deployment {self._model_name!r} estimates {cycles} "
                "cycles per inference; throughput and energy-per-frame "
                "are undefined for this degenerate configuration"
            )
        latency_us = cycles * self.config.cycle_time_us
        power_w = self.estimate_power_w()
        resources = self.estimate_resources()
        return PerformanceReport(
            model_name=self._model_name,
            num_steps=compiled.network.num_steps,
            num_conv_units=self.config.num_conv_units,
            clock_mhz=self.config.clock_mhz,
            cycles=cycles,
            latency_us=latency_us,
            throughput_fps=1e6 / latency_us,
            power_w=power_w,
            energy_per_frame_mj=power_w * latency_us * 1e-3,
            luts=resources.luts,
            ffs=resources.ffs,
            bram_blocks=compiled.bram.total_blocks,
            bram_mbit=compiled.bram.total_mbit,
            weights_on_chip=compiled.weights_on_chip,
            accuracy=accuracy,
        )

"""Configuration-word ISA for the accelerator controller.

The paper's execution "is managed by a controller" configured per layer;
its companion framework (E3NE, ref. [14]) drives the same hardware
generation through an instruction stream.  This module gives the compiled
model a concrete deployment artifact: each layer program is lowered to a
64-bit configuration word (opcode + packed operand fields) that a
hardware controller could latch directly.

The encoding is round-trip tested (encode → decode → identical fields),
and ``assemble``/``disassemble`` convert whole compiled models, so a
deployment can be stored, diffed and inspected as hex words.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum

from repro.core.compiler import CompiledModel
from repro.errors import CompilationError

__all__ = ["Opcode", "Instruction", "encode", "decode", "assemble",
           "disassemble"]


class Opcode(IntEnum):
    """Layer-level operations the controller sequences."""

    CONV = 0x1
    POOL = 0x2
    LINEAR = 0x3
    FLATTEN = 0x4
    LOAD_INPUT = 0x5
    DRAM_FETCH = 0x6
    HALT = 0x7


# Field widths (LSB-first) for the packed operands.  Every field must fit
# the quantity it carries for all supported networks (checked on encode).
_FIELDS = {
    Opcode.CONV: (("in_channels", 12), ("out_channels", 12),
                  ("height", 8), ("width", 8), ("kernel", 4),
                  ("stride", 3), ("padding", 3), ("groups", 10)),
    Opcode.POOL: (("channels", 12), ("height", 8), ("width", 8),
                  ("size", 4), ("stride", 3)),
    Opcode.LINEAR: (("in_features", 16), ("out_features", 16),
                    ("is_output", 1)),
    Opcode.FLATTEN: (("features", 20),),
    Opcode.LOAD_INPUT: (("channels", 12), ("height", 8), ("width", 8),
                        ("num_steps", 5)),
    Opcode.DRAM_FETCH: (("kilobits", 20),),
    Opcode.HALT: (),
}

_OPCODE_BITS = 4
_WORD_BITS = 64


@dataclass(frozen=True)
class Instruction:
    """One decoded controller instruction."""

    opcode: Opcode
    operands: dict

    def __str__(self) -> str:
        args = ", ".join(f"{k}={v}" for k, v in self.operands.items())
        return f"{self.opcode.name.lower()} {args}".strip()


def encode(instruction: Instruction) -> int:
    """Pack an instruction into a 64-bit configuration word."""
    fields = _FIELDS[instruction.opcode]
    expected = {name for name, _ in fields}
    if set(instruction.operands) != expected:
        raise CompilationError(
            f"{instruction.opcode.name} expects operands {sorted(expected)},"
            f" got {sorted(instruction.operands)}"
        )
    word = int(instruction.opcode)
    shift = _OPCODE_BITS
    for name, width in fields:
        value = int(instruction.operands[name])
        if not 0 <= value < (1 << width):
            raise CompilationError(
                f"operand {name}={value} does not fit {width} bits in "
                f"{instruction.opcode.name}"
            )
        word |= value << shift
        shift += width
    if shift > _WORD_BITS:
        raise CompilationError(
            f"{instruction.opcode.name} fields exceed {_WORD_BITS} bits")
    return word


def decode(word: int) -> Instruction:
    """Unpack a configuration word back into an instruction."""
    opcode_value = word & ((1 << _OPCODE_BITS) - 1)
    try:
        opcode = Opcode(opcode_value)
    except ValueError as exc:
        raise CompilationError(f"unknown opcode {opcode_value:#x}") from exc
    operands = {}
    shift = _OPCODE_BITS
    for name, width in _FIELDS[opcode]:
        operands[name] = (word >> shift) & ((1 << width) - 1)
        shift += width
    if word >> shift:
        raise CompilationError(
            f"word {word:#018x} has stray bits beyond {opcode.name}'s "
            "fields"
        )
    return Instruction(opcode=opcode, operands=operands)


def assemble(compiled: CompiledModel) -> list[int]:
    """Lower a compiled model to its configuration-word stream."""
    network = compiled.network
    c, h, w = network.input_shape
    words = [encode(Instruction(Opcode.LOAD_INPUT, {
        "channels": c, "height": h, "width": w,
        "num_steps": network.num_steps}))]
    for program in compiled.programs:
        spec = program.spec
        if (program.kind in ("conv", "linear")
                and not program.weights_on_chip):
            kilobits = -(-spec.num_weights * network.weight_bits // 1024)
            words.append(encode(Instruction(Opcode.DRAM_FETCH, {
                "kilobits": kilobits})))
        if program.kind == "conv":
            words.append(encode(Instruction(Opcode.CONV, {
                "in_channels": spec.in_shape[0],
                "out_channels": spec.out_shape[0],
                "height": spec.in_shape[1], "width": spec.in_shape[2],
                "kernel": spec.kernel_size[0], "stride": spec.stride,
                "padding": spec.padding,
                "groups": program.conv_schedule.num_rounds})))
        elif program.kind == "pool":
            words.append(encode(Instruction(Opcode.POOL, {
                "channels": spec.in_shape[0], "height": spec.in_shape[1],
                "width": spec.in_shape[2], "size": spec.size,
                "stride": spec.stride})))
        elif program.kind == "flatten":
            words.append(encode(Instruction(Opcode.FLATTEN, {
                "features": spec.out_features})))
        else:
            words.append(encode(Instruction(Opcode.LINEAR, {
                "in_features": spec.in_features,
                "out_features": spec.out_features,
                "is_output": int(spec.is_output)})))
    words.append(encode(Instruction(Opcode.HALT, {})))
    return words


def disassemble(words: list[int]) -> list[Instruction]:
    """Decode a configuration-word stream (listing-style inverse)."""
    return [decode(word) for word in words]

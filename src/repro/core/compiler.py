"""Compiler: maps a quantized network onto an accelerator configuration.

Produces a :class:`CompiledModel` — an ordered list of layer programs with
the output-channel schedule for the convolution units (which unit computes
which channels in which pass), the memory plan (weights on-chip vs DRAM,
buffer sizes) and validated capacity constraints.  The controller executes
this schedule; the latency model prices it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.bram import BramPlan, plan_bram
from repro.core.config import AcceleratorConfig
from repro.core.latency import channels_per_pass
from repro.errors import CompilationError
from repro.snn.spec import QuantizedNetwork

__all__ = ["ConvSchedule", "LayerProgram", "CompiledModel", "compile_network"]


@dataclass(frozen=True)
class ConvSchedule:
    """The output-channel schedule of one convolution layer.

    ``rounds`` is a list of scheduling rounds; each round assigns to every
    active unit the list of channels it computes in one pass.  All units in
    a round run concurrently, rounds run back to back (this is the ``G``
    of the latency model).
    """

    channels_per_unit_pass: int
    rounds: tuple

    @property
    def num_rounds(self) -> int:
        return len(self.rounds)


@dataclass(frozen=True)
class LayerProgram:
    """One layer's execution descriptor."""

    index: int
    name: str
    kind: str                      # conv / pool / linear / flatten
    spec: object
    conv_schedule: ConvSchedule | None = None
    weights_on_chip: bool = True


@dataclass(frozen=True)
class CompiledModel:
    """A network bound to a configuration, ready to execute."""

    network: QuantizedNetwork
    config: AcceleratorConfig
    programs: tuple
    bram: BramPlan
    weights_on_chip: bool

    @property
    def num_layers(self) -> int:
        return len(self.programs)


def _schedule_conv(spec, config: AcceleratorConfig) -> ConvSchedule:
    """Round-robin channel groups over the available convolution units."""
    p = channels_per_pass(spec, config)
    c_out = spec.out_shape[0]
    groups = [list(range(lo, min(lo + p, c_out)))
              for lo in range(0, c_out, p)]
    rounds = []
    u = config.num_conv_units
    for start in range(0, len(groups), u):
        round_assignment = tuple(
            tuple(g) for g in groups[start:start + u])
        rounds.append(round_assignment)
    return ConvSchedule(channels_per_unit_pass=p, rounds=tuple(rounds))


def compile_network(
    network: QuantizedNetwork,
    config: AcceleratorConfig,
) -> CompiledModel:
    """Validate and schedule ``network`` for ``config``.

    Raises :class:`~repro.errors.CompilationError` when a layer cannot map
    (kernel taller than the adder array, rows wider than the units, or
    activations exceeding buffer capacity).
    """
    if network.weight_bits != config.weight_bits:
        raise CompilationError(
            f"network quantized to {network.weight_bits}-bit weights but "
            f"the accelerator is configured for {config.weight_bits}"
        )
    weight_bytes = network.parameter_bytes
    weights_on_chip = (
        weight_bytes <= config.memory.onchip_weight_capacity)

    programs: list[LayerProgram] = []
    conv_idx = pool_idx = fc_idx = 0
    for i, spec in enumerate(network.layers):
        if spec.kind == "conv":
            conv_idx += 1
            kr, kc = spec.kernel_size
            if kr > config.conv_unit.rows:
                raise CompilationError(
                    f"conv{conv_idx}: kernel of {kr} rows exceeds the "
                    f"unit's {config.conv_unit.rows} adder rows"
                )
            schedule = _schedule_conv(spec, config)
            programs.append(LayerProgram(
                index=i, name=f"conv{conv_idx}", kind="conv", spec=spec,
                conv_schedule=schedule, weights_on_chip=weights_on_chip))
        elif spec.kind == "pool":
            pool_idx += 1
            if spec.size > config.pool_unit.rows:
                raise CompilationError(
                    f"pool{pool_idx}: window of {spec.size} rows exceeds "
                    f"the pool unit's {config.pool_unit.rows} adder rows"
                )
            if spec.out_shape[2] > config.pool_unit.columns:
                raise CompilationError(
                    f"pool{pool_idx}: pooled rows of width "
                    f"{spec.out_shape[2]} exceed the pool unit's "
                    f"{config.pool_unit.columns} columns"
                )
            programs.append(LayerProgram(
                index=i, name=f"pool{pool_idx}", kind="pool", spec=spec))
        elif spec.kind == "flatten":
            programs.append(LayerProgram(
                index=i, name="flatten", kind="flatten", spec=spec))
        else:
            fc_idx += 1
            programs.append(LayerProgram(
                index=i, name=f"fc{fc_idx}", kind="linear", spec=spec,
                weights_on_chip=weights_on_chip))

    bram = plan_bram(network, config.memory, weights_on_chip)
    activation_bits = max(bram.activation_2d_bits, bram.activation_1d_bits)
    if activation_bits > config.memory.activation_capacity * 8:
        raise CompilationError(
            f"activations need {activation_bits} bits per bank, exceeding "
            f"the configured {config.memory.activation_capacity * 8}"
        )
    return CompiledModel(
        network=network, config=config, programs=tuple(programs),
        bram=bram, weights_on_chip=weights_on_chip)

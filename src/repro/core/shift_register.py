"""Input shift register of a convolution/pooling unit (Fig. 2, blue).

The input logic fetches one row of a binary feature map into a register
spanning the whole row.  Adder columns tap every ``stride``-th position;
shifting the register left by one exposes the next kernel column to every
tap simultaneously — that single shift is what makes the activation-column
loop fully parallel (Alg. 1 line 7).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError, SimulationError

__all__ = ["InputShiftRegister"]


class InputShiftRegister:
    """Functional model of the row-wide binary shift register."""

    def __init__(self, length: int) -> None:
        if length < 1:
            raise ShapeError(f"register length must be positive: {length}")
        self.length = length
        self._bits = np.zeros(length, dtype=np.uint8)
        self._loaded = False

    def load_row(self, row: np.ndarray) -> None:
        """Latch one binary feature-map row (left-aligned, zero-filled)."""
        row = np.asarray(row)
        if row.ndim != 1:
            raise ShapeError(f"row must be 1-D, got shape {row.shape}")
        if row.size > self.length:
            raise ShapeError(
                f"row of width {row.size} exceeds register length "
                f"{self.length}"
            )
        if row.size and int(row.max(initial=0)) > 1:
            raise SimulationError("shift register carries binary spikes only")
        self._bits.fill(0)
        self._bits[:row.size] = row.astype(np.uint8)
        self._loaded = True

    def shift(self) -> None:
        """Shift left by one position, filling with zero on the right."""
        if not self._loaded:
            raise SimulationError("shift before any row was loaded")
        self._bits[:-1] = self._bits[1:]
        self._bits[-1] = 0

    def taps(self, num_taps: int, stride: int) -> np.ndarray:
        """Values visible to the adder columns: every ``stride``-th bit.

        Tap ``x`` reads position ``x * stride`` — the wiring established
        "according to stride" in Fig. 2.
        """
        if not self._loaded:
            raise SimulationError("taps read before any row was loaded")
        if num_taps < 1 or stride < 1:
            raise ShapeError("taps and stride must be positive")
        last = (num_taps - 1) * stride
        if last >= self.length:
            raise ShapeError(
                f"tap {num_taps - 1} at stride {stride} reads position "
                f"{last}, beyond register length {self.length}"
            )
        return self._bits[0:last + 1:stride].copy()

    @property
    def bits(self) -> np.ndarray:
        """Current register contents (for tests and diagrams)."""
        return self._bits.copy()

"""Tests for QuantizedNetwork queries and dataset→encoding integration."""

import numpy as np
import pytest

from repro.data import generate_mnist
from repro.encoding import radix
from repro.errors import ConversionError
from repro.models import performance_network, vgg11_performance_network
from repro.snn.spec import QuantizedNetwork


class TestNetworkQueries:
    def _net(self):
        return performance_network(
            [("conv", 4, 3, 1, 0), ("pool", 2), ("conv", 6, 3, 1, 0),
             ("flatten",), ("linear", 10), ("linear", 3)],
            input_shape=(1, 12, 12), num_steps=4)

    def test_layer_kind_queries(self):
        net = self._net()
        assert len(net.conv_layers()) == 2
        assert len(net.pool_layers()) == 1
        assert len(net.linear_layers()) == 2

    def test_parameter_count(self):
        net = self._net()
        expected = (4 * 1 * 9) + (6 * 4 * 9)
        flat = 6 * 3 * 3
        expected += 10 * flat + 3 * 10
        assert net.num_parameters == expected

    def test_parameter_bytes_rounds_up(self):
        net = self._net()
        assert net.parameter_bytes == (net.num_parameters * 3 + 7) // 8

    def test_empty_network_rejected(self):
        with pytest.raises(ConversionError):
            QuantizedNetwork(layers=(), num_steps=3, weight_bits=3,
                             input_shape=(1, 4, 4), num_classes=2)

    def test_vgg_has_eleven_weight_layers(self):
        net = vgg11_performance_network()
        assert len(net.conv_layers()) + len(net.linear_layers()) == 11

    def test_conv_spec_helpers(self):
        conv = self._net().conv_layers()[0]
        assert conv.kernel_size == (3, 3)
        assert conv.num_weights == 4 * 1 * 9
        assert conv.macs > 0

    def test_pool_shift(self):
        pool = self._net().pool_layers()[0]
        assert pool.shift == 2  # 2x2 window -> divide by 4


class TestDatasetEncodingIntegration:
    def test_images_encode_without_clipping_surprise(self):
        """Dataset output lives in [0,1] and must round-trip through the
        radix grid with bounded error for every sample."""
        train, _ = generate_mnist(train_count=24, test_count=8)
        for t in (3, 6):
            ints = radix.quantize_real(train.images, t)
            decoded = ints.astype(np.float64) / (1 << t)
            err = np.abs(train.images - decoded)
            assert err.max() < 1.0 / (1 << t) + 1e-12

    def test_batch_encode_decode_roundtrip(self):
        train, _ = generate_mnist(train_count=8, test_count=4)
        ints = radix.quantize_real(train.images, 5)
        spikes = radix.encode_ints(ints, 5)
        np.testing.assert_array_equal(radix.decode_ints(spikes), ints)

    def test_spike_density_tracks_brightness(self):
        """Brighter images must produce more spikes — the physical link
        between data statistics and accelerator energy."""
        train, _ = generate_mnist(train_count=16, test_count=4)
        dim = train.images * 0.3
        t = 4
        bright_spikes = radix.encode_real(train.images, t).num_spikes
        dim_spikes = radix.encode_real(dim, t).num_spikes
        assert bright_spikes > dim_spikes

"""Bit-exactness tests for the processing units against the reference
integer semantics, over randomized layer shapes (property-based)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import AcceleratorConfig, ConvUnit, LinearUnit, PoolUnit
from repro.core.config import ConvUnitConfig, PoolUnitConfig
from repro.encoding import radix
from repro.errors import SimulationError
from repro.snn.model import _int_conv, _int_linear, _int_pool
from repro.snn.spec import QuantConvSpec, QuantLinearSpec, QuantPoolSpec


def make_conv_spec(rng, c_in, c_out, k, h, w, stride=1, padding=0,
                   num_steps=3):
    h_out = (h + 2 * padding - k) // stride + 1
    w_out = (w + 2 * padding - k) // stride + 1
    return QuantConvSpec(
        weights=rng.integers(-3, 4, size=(c_out, c_in, k, k)),
        bias=rng.integers(-20, 20, size=c_out),
        scales=rng.uniform(0.002, 0.05, size=c_out),
        stride=stride, padding=padding,
        in_shape=(c_in, h, w), out_shape=(c_out, h_out, w_out),
    )


def spike_input(rng, num_steps, shape):
    ints = rng.integers(0, 1 << num_steps, size=shape)
    return radix.encode_ints(ints, num_steps).bits, ints


def reference_conv(spec, ints, num_steps):
    acc = _int_conv(ints[np.newaxis], spec)[0] + spec.bias.reshape(-1, 1, 1)
    from repro.snn.spec import requantize
    return requantize(acc, spec.scales, num_steps, channel_axis=0)


class TestConvUnitExactness:
    @given(
        st.integers(min_value=1, max_value=3),    # c_in
        st.integers(min_value=1, max_value=4),    # c_out
        st.sampled_from([(3, 1, 0), (3, 1, 1), (5, 1, 0), (3, 2, 1)]),
        st.integers(min_value=7, max_value=11),   # spatial
        st.integers(min_value=2, max_value=5),    # T
        st.integers(min_value=0, max_value=100),  # seed
    )
    @settings(max_examples=20, deadline=None)
    def test_matches_reference(self, c_in, c_out, kparams, size, t, seed):
        k, stride, padding = kparams
        rng = np.random.default_rng(seed)
        spec = make_conv_spec(rng, c_in, c_out, k, size, size, stride,
                              padding, t)
        bits, ints = spike_input(rng, t, spec.in_shape)
        config = AcceleratorConfig(
            conv_unit=ConvUnitConfig(columns=max(spec.out_shape[2], 4),
                                     rows=k))
        unit = ConvUnit(config)
        channels = list(range(c_out))[:1]  # one channel per pass
        out, stats = unit.run_pass(spec, bits, channels, t)
        expected = reference_conv(spec, ints, t)
        np.testing.assert_array_equal(out[0], expected[channels[0]])
        assert stats.cycles > 0
        assert stats.adder_ops > 0

    def test_channel_packing_exact(self):
        """Fully-collapsed 1x1 outputs: many channels share one pass."""
        rng = np.random.default_rng(0)
        spec = make_conv_spec(rng, c_in=3, c_out=8, k=5, h=5, w=5)
        assert spec.out_shape == (8, 1, 1)
        t = 3
        bits, ints = spike_input(rng, t, spec.in_shape)
        config = AcceleratorConfig()  # X=30 -> packs floor(34/5)=6
        unit = ConvUnit(config)
        out, _ = unit.run_pass(spec, bits, list(range(6)), t)
        expected = reference_conv(spec, ints, t)
        np.testing.assert_array_equal(out, expected[:6])

    def test_packing_capacity_enforced(self):
        rng = np.random.default_rng(1)
        spec = make_conv_spec(rng, 1, 4, 3, 10, 10)  # out width 8
        bits, _ = spike_input(rng, 3, spec.in_shape)
        config = AcceleratorConfig(
            conv_unit=ConvUnitConfig(columns=10, rows=3))
        unit = ConvUnit(config)
        with pytest.raises(SimulationError):
            unit.run_pass(spec, bits, [0, 1], 3)  # only 1 row fits

    def test_kernel_taller_than_array_rejected(self):
        rng = np.random.default_rng(2)
        spec = make_conv_spec(rng, 1, 1, 5, 8, 8)
        bits, _ = spike_input(rng, 2, spec.in_shape)
        config = AcceleratorConfig(
            conv_unit=ConvUnitConfig(columns=8, rows=3))
        with pytest.raises(SimulationError):
            ConvUnit(config).run_pass(spec, bits, [0], 2)

    def test_traffic_counts_row_reuse(self):
        """Each input row is read once per (step, channel) pass — the
        row-reuse property the paper claims."""
        rng = np.random.default_rng(3)
        t = 2
        spec = make_conv_spec(rng, c_in=2, c_out=1, k=3, h=8, w=8)
        bits, _ = spike_input(rng, t, spec.in_shape)
        unit = ConvUnit(AcceleratorConfig(
            conv_unit=ConvUnitConfig(columns=6, rows=3)))
        _, stats = unit.run_pass(spec, bits, [0], t)
        assert stats.traffic.activation_read_bits == t * 2 * 8 * 8


class TestPoolUnitExactness:
    @given(st.integers(min_value=1, max_value=4),
           st.sampled_from([4, 6, 8, 10]),
           st.integers(min_value=2, max_value=5),
           st.integers(min_value=0, max_value=50))
    @settings(max_examples=20, deadline=None)
    def test_matches_reference(self, channels, size, t, seed):
        rng = np.random.default_rng(seed)
        spec = QuantPoolSpec(size=2, stride=2,
                             in_shape=(channels, size, size),
                             out_shape=(channels, size // 2, size // 2))
        bits, ints = spike_input(rng, t, spec.in_shape)
        unit = PoolUnit(AcceleratorConfig(
            pool_unit=PoolUnitConfig(columns=size, rows=2)))
        out, stats = unit.run_layer(spec, bits, t)
        np.testing.assert_array_equal(out, _int_pool(ints[np.newaxis],
                                                     spec)[0])
        assert stats.cycles > 0

    def test_pooling_preserves_value_range(self):
        rng = np.random.default_rng(1)
        t = 4
        spec = QuantPoolSpec(size=2, stride=2, in_shape=(1, 6, 6),
                             out_shape=(1, 3, 3))
        bits, _ = spike_input(rng, t, spec.in_shape)
        out, _ = PoolUnit(AcceleratorConfig()).run_layer(spec, bits, t)
        assert out.min() >= 0 and out.max() <= radix.max_int(t)


class TestLinearUnitExactness:
    @given(st.integers(min_value=1, max_value=30),
           st.integers(min_value=1, max_value=40),
           st.integers(min_value=2, max_value=5),
           st.booleans(),
           st.integers(min_value=0, max_value=50))
    @settings(max_examples=25, deadline=None)
    def test_matches_reference(self, n_in, n_out, t, is_output, seed):
        rng = np.random.default_rng(seed)
        spec = QuantLinearSpec(
            weights=rng.integers(-3, 4, size=(n_out, n_in)),
            bias=rng.integers(-10, 10, size=n_out),
            scales=rng.uniform(0.005, 0.08, size=n_out),
            is_output=is_output, in_features=n_in, out_features=n_out,
        )
        ints = rng.integers(0, 1 << t, size=n_in)
        bits = radix.encode_ints(ints, t).bits
        unit = LinearUnit(AcceleratorConfig())
        out, stats = unit.run_layer(spec, bits, t)
        acc = _int_linear(ints[np.newaxis], spec)[0] + spec.bias
        if is_output:
            np.testing.assert_array_equal(out, acc)
        else:
            from repro.snn.spec import requantize
            expected = requantize(acc[np.newaxis], spec.scales, t,
                                  channel_axis=1)[0]
            np.testing.assert_array_equal(out, expected)
        assert stats.cycles >= t * spec.in_features

    def test_weight_fetch_bound_cycles(self):
        """Cycles grow with ceil(N_out / parallel_outputs) blocks."""
        rng = np.random.default_rng(0)
        t = 2
        config = AcceleratorConfig()
        p = config.linear_unit.parallel_outputs

        def cycles_for(n_out):
            spec = QuantLinearSpec(
                weights=rng.integers(-3, 4, size=(n_out, 10)),
                bias=np.zeros(n_out, dtype=np.int64),
                scales=np.ones(n_out), is_output=True,
                in_features=10, out_features=n_out)
            bits = radix.encode_ints(rng.integers(0, 4, size=10), t).bits
            _, stats = LinearUnit(config).run_layer(spec, bits, t)
            return stats.cycles

        assert cycles_for(p + 1) > cycles_for(p)

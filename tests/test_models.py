"""Tests for the model zoo: exact paper topologies and parameter counts."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.models import (
    build_fang_cnn,
    build_ju_cnn,
    build_lenet5,
    build_vgg11,
    performance_network,
    vgg11_channel_widths,
    vgg11_performance_network,
)


class TestLeNet5:
    def test_forward_shape(self):
        model = build_lenet5()
        out = model.forward(np.zeros((2, 1, 32, 32)))
        assert out.shape == (2, 10)

    def test_layer_plan_matches_paper_string(self):
        """32x32x1 - 6C5 - P2 - 16C5 - P2 - 120C5 - 120 - 84 - 10."""
        model = build_lenet5()
        convs = [l for l in model.layers
                 if type(l).__name__ == "Conv2d"]
        linears = [l for l in model.layers
                   if type(l).__name__ == "Linear"]
        assert [c.out_channels for c in convs] == [6, 16, 120]
        assert all(c.kernel_size == 5 for c in convs)
        assert [(l.in_features, l.out_features) for l in linears] == [
            (120, 120), (120, 84), (84, 10)]

    def test_trainable(self):
        model = build_lenet5()
        assert model.num_parameters() > 50_000


class TestComparisonCNNs:
    def test_fang_cnn_shapes(self):
        model = build_fang_cnn()
        out = model.forward(np.zeros((1, 1, 28, 28)))
        assert out.shape == (1, 10)
        linears = [l for l in model.layers
                   if type(l).__name__ == "Linear"]
        assert linears[0].in_features == 800   # 32 * 5 * 5
        assert linears[0].out_features == 256

    def test_ju_cnn_shapes(self):
        model = build_ju_cnn()
        out = model.forward(np.zeros((1, 1, 28, 28)))
        assert out.shape == (1, 10)
        linears = [l for l in model.layers
                   if type(l).__name__ == "Linear"]
        assert linears[0].in_features == 1024  # 64 * 4 * 4
        assert linears[0].out_features == 128


class TestVGG11:
    def test_full_width_parameter_count_matches_paper(self):
        """The paper quotes 28.5M parameters for VGG-11."""
        model = build_vgg11()
        params = model.num_parameters()
        assert 28.3e6 < params < 28.8e6

    def test_forward_shape_reduced(self):
        model = build_vgg11(width_multiplier=0.0625)
        out = model.forward(np.zeros((2, 3, 32, 32)))
        assert out.shape == (2, 100)

    def test_channel_widths(self):
        assert vgg11_channel_widths(1.0) == [64, 128, 256, 256, 512, 512,
                                             512, 512]
        assert vgg11_channel_widths(0.125) == [8, 16, 32, 32, 64, 64, 64,
                                               64]

    def test_eleven_weight_layers(self):
        """VGG-11 means 8 conv + 3 linear weight layers."""
        model = build_vgg11(width_multiplier=0.0625)
        convs = [l for l in model.layers if type(l).__name__ == "Conv2d"]
        linears = [l for l in model.layers if type(l).__name__ == "Linear"]
        assert len(convs) == 8 and len(linears) == 3

    def test_max_pool_variant(self):
        model = build_vgg11(width_multiplier=0.0625, pool="max")
        assert any(type(l).__name__ == "MaxPool2d" for l in model.layers)

    def test_invalid_options(self):
        with pytest.raises(ShapeError):
            build_vgg11(width_multiplier=0.0)
        with pytest.raises(ShapeError):
            build_vgg11(pool="sum")


class TestPerformanceNetworks:
    def test_vgg_geometry_matches_trained_model(self):
        net = vgg11_performance_network(num_steps=6)
        # Same weight tensors as the trainable model (the Sequential's
        # count additionally includes biases, which the accelerator folds
        # into the requantization stage).
        trained = build_vgg11()
        weight_only = sum(
            p.size for layer in trained.layers for p in layer.params()
            if p.ndim >= 2)
        assert net.num_parameters == weight_only
        assert net.num_steps == 6
        assert net.num_classes == 100

    def test_vgg_geometry_parameter_bytes(self):
        net = vgg11_performance_network()
        # 28.5M 3-bit weights ~ 10.7 MB: needs DRAM (paper Section IV-D).
        assert 10.0e6 < net.parameter_bytes < 11.5e6

    def test_performance_network_shapes_propagate(self):
        net = performance_network(
            [("conv", 4, 3, 1, 1), ("pool", 2), ("flatten",),
             ("linear", 10)],
            input_shape=(1, 8, 8), num_steps=3)
        conv = net.conv_layers()[0]
        assert conv.out_shape == (4, 8, 8)
        assert net.layers[-1].in_features == 4 * 4 * 4

    def test_must_end_in_linear(self):
        with pytest.raises(ShapeError):
            performance_network([("conv", 2, 3, 1, 0)],
                                input_shape=(1, 8, 8), num_steps=3)

    def test_executable_by_reference_semantics(self):
        """Geometry networks carry real (random) weights and must run."""
        from repro.snn import SNNModel
        net = performance_network(
            [("conv", 3, 3, 1, 0), ("pool", 2), ("flatten",),
             ("linear", 5)],
            input_shape=(1, 10, 10), num_steps=3, seed=1)
        model = SNNModel(net)
        logits = model.forward_ints(
            np.random.default_rng(0).random((2, 1, 10, 10)))
        assert logits.shape == (2, 5)

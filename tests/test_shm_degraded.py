"""Shared-memory degraded paths: every fallback is bit-identical.

``repro.runtime.shm`` promises that shared-memory transport is an
optimization, never a semantic: when it is disabled (``REPRO_NO_SHM``),
unavailable (locked-down ``/dev/shm``) or the arena grows mid-flight
(segment replaced under a new name), process lanes fall back to — or
recover through — the pickle path and produce results bit-identical to
a plain thread lane.
"""

import numpy as np
import pytest

import repro.runtime.shm as shm_module
from repro.core import AcceleratorConfig
from repro.models import performance_network
from repro.runtime import (
    Deployment,
    ProcessWorker,
    ThreadWorker,
    WorkItem,
    WorkerGroup,
    shm_available,
)
from repro.runtime.shm import ShmArena


def tiny_deployment(rng):
    net = performance_network(
        [("conv", 4, 3, 1, 1), ("pool", 2), ("flatten",), ("linear", 5)],
        input_shape=(1, 8, 8), num_steps=3,
        seed=int(rng.integers(1 << 16)))
    return Deployment(network=net,
                      config=AcceleratorConfig.for_network(net))


def make_items(rng, deployment, count=3, images_each=3):
    shape = deployment.network.input_shape
    return [WorkItem(item_id=i, deployment=0,
                     images=rng.random((images_each,) + shape))
            for i in range(count)]


def run_on(worker, deployment, items):
    with WorkerGroup([worker], deployments=[deployment]) as group:
        return group.run([WorkItem(item_id=i.item_id, deployment=0,
                                   images=i.images)
                          for i in items])


def assert_bit_identical(baseline, results):
    for base, other in zip(baseline, results):
        np.testing.assert_array_equal(base.logits, other.logits)
        assert base.merged_trace() == other.merged_trace()


class TestAvailabilityProbe:
    def test_repro_no_shm_disables(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_SHM", "1")
        assert shm_available() is False

    def test_unavailable_dev_shm_probe_caches_false(self, monkeypatch):
        class _Broken:
            def SharedMemory(self, *args, **kwargs):
                raise OSError("no /dev/shm on this host")

        monkeypatch.delenv("REPRO_NO_SHM", raising=False)
        monkeypatch.setattr(shm_module, "shared_memory", _Broken())
        monkeypatch.setattr(shm_module, "_available", None)
        assert shm_module.shm_available() is False
        # The probe result is cached: a second call never re-probes
        # (the broken factory would raise if it did anything).
        assert shm_module.shm_available() is False


class TestDegradedExecution:
    def test_no_shm_env_falls_back_to_pickle_bit_identical(
            self, rng, monkeypatch):
        deployment = tiny_deployment(rng)
        items = make_items(rng, deployment)
        baseline = run_on(ThreadWorker(), deployment, items)
        monkeypatch.setenv("REPRO_NO_SHM", "1")
        results = run_on(ProcessWorker(), deployment, items)
        assert_bit_identical(baseline, results)

    def test_unavailable_shm_falls_back_bit_identical(
            self, rng, monkeypatch):
        """A host without usable shared memory still honors the fabric
        contract through the pickle path."""
        deployment = tiny_deployment(rng)
        items = make_items(rng, deployment)
        baseline = run_on(ThreadWorker(), deployment, items)

        monkeypatch.delenv("REPRO_NO_SHM", raising=False)
        monkeypatch.setattr(shm_module, "_available", False)
        assert shm_available() is False
        results = run_on(ProcessWorker(), deployment, items)
        assert_bit_identical(baseline, results)

    @pytest.mark.skipif(not shm_available(),
                        reason="no shared memory on this host")
    def test_arena_grow_mid_flight_bit_identical(self, rng,
                                                 monkeypatch):
        """A batch outgrowing the arena replaces the segment under a
        new name mid-run; the child re-attaches and results hold."""
        monkeypatch.setattr(shm_module, "_MIN_CAPACITY", 4096)
        deployment = tiny_deployment(rng)
        shape = deployment.network.input_shape
        small = [WorkItem(item_id=0, deployment=0,
                          images=rng.random((2,) + shape))]
        # 32 images * 512 B each overflows the 4 KiB floor.
        big = [WorkItem(item_id=1, deployment=0,
                        images=rng.random((32,) + shape))]
        base_small = run_on(ThreadWorker(), deployment, small)
        base_big = run_on(ThreadWorker(), deployment, big)

        worker = ProcessWorker()
        with WorkerGroup([worker], deployments=[deployment]) as group:
            got_small = group.run([WorkItem(item_id=0, deployment=0,
                                            images=small[0].images)])
            got_big = group.run([WorkItem(item_id=1, deployment=0,
                                          images=big[0].images)])
        assert_bit_identical(base_small, got_small)
        assert_bit_identical(base_big, got_big)


class TestArena:
    def test_growth_replaces_segment_and_stales_old_views(
            self, monkeypatch):
        if not shm_available():
            pytest.skip("no shared memory on this host")
        monkeypatch.setattr(shm_module, "_MIN_CAPACITY", 1024)
        arena = ShmArena()
        try:
            [small_view], _ = arena.place(
                [np.arange(16, dtype=np.float64)])
            first_segment = small_view.segment
            np.testing.assert_array_equal(
                arena.read(small_view), np.arange(16, dtype=np.float64))
            big = np.arange(1024, dtype=np.float64)   # 8 KiB > floor
            [big_view], _ = arena.place([big])
            assert big_view.segment != first_segment
            np.testing.assert_array_equal(arena.read(big_view), big)
            with pytest.raises(ValueError):
                arena.read(small_view)   # old segment is gone
        finally:
            arena.close()

    def test_reply_region_sits_behind_inputs(self):
        if not shm_available():
            pytest.skip("no shared memory on this host")
        arena = ShmArena()
        try:
            views, reply = arena.place(
                [np.ones(8), np.zeros(8)], reply_nbytes=64)
            assert reply.segment == views[0].segment
            assert reply.offset >= views[-1].offset + views[-1].nbytes
            assert reply.nbytes == 64
        finally:
            arena.close()

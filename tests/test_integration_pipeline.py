"""End-to-end integration: train → convert → deploy → run, plus the
experiment runners in fast mode.

These tests use deliberately tiny budgets (they verify plumbing and
invariants, not accuracy); the benchmarks regenerate the paper's tables at
full scale.
"""

import numpy as np
import pytest

from repro.core import Accelerator, AcceleratorConfig
from repro.data import generate_mnist
from repro.harness import ArtifactStore, ExperimentRunner, ExperimentSettings
from repro.models import build_lenet5
from repro.nn import Adam
from repro.nn.qat import QATTrainer, add_activation_quantization
from repro.snn import ann_to_snn


@pytest.fixture(scope="module")
def fast_runner(tmp_path_factory):
    settings = ExperimentSettings(
        train_count=400, test_count=120, calibration_count=64,
        base_epochs=2, t3_epochs=2, vgg_width=0.0625,
        vgg_train_count=300, vgg_test_count=100, vgg_epochs=1, fast=True)
    store = ArtifactStore(tmp_path_factory.mktemp("artifacts"))
    return ExperimentRunner(settings=settings, store=store)


class TestFullPipeline:
    def test_train_convert_deploy_run(self):
        train, test = generate_mnist(train_count=300, test_count=40)
        model = add_activation_quantization(build_lenet5(), num_steps=3)
        trainer = QATTrainer(model, Adam(model.params(), lr=2e-3),
                             weight_bits=3, input_steps=3, batch_size=64)
        trainer.fit(train.images, train.labels, epochs=1)
        snn = ann_to_snn(model, train.subset(64), num_steps=3)

        accelerator = Accelerator(AcceleratorConfig())
        accelerator.deploy(snn, name="LeNet-5")
        images = test.images[:3]
        preds, traces = accelerator.run(images)
        np.testing.assert_array_equal(preds, snn.predict(images))
        report = accelerator.report()
        assert report.cycles == traces[0].total_cycles


class TestExperimentRunnersFastMode:
    def test_table1_structure(self, fast_runner):
        result = fast_runner.run_table1(steps=(3, 4))
        assert len(result["rows"]) == 2
        for row in result["rows"]:
            assert 0 <= row["accuracy_pct"] <= 100
            assert row["latency_us"] > 0
        # Latency rises with T regardless of training quality.
        assert (result["rows"][1]["latency_us"]
                > result["rows"][0]["latency_us"])
        assert "Table I" in result["table"].render()

    def test_table2_structure(self, fast_runner):
        result = fast_runner.run_table2(unit_counts=(1, 2))
        lats = [r["latency_us"] for r in result["rows"]]
        assert lats[1] < lats[0]
        powers = [r["power_w"] for r in result["rows"]]
        assert powers[1] > powers[0]
        assert "Table II" in result["table"].render()

    def test_table3_structure(self, fast_runner):
        result = fast_runner.run_table3(include_vgg=False)
        labels = [r["label"] for r in result["rows"]]
        assert labels[0].startswith("Ju")
        assert labels[1].startswith("Fang")
        ours = result["rows"][2:]
        assert all(r["latency_us"] > 0 for r in ours)
        # The headline ordering: our latency beats both baselines.
        assert all(r["latency_us"] < 6110.0 for r in ours)

    def test_dataflow_ablation(self, fast_runner):
        result = fast_runner.run_dataflow_ablation(num_images=1)
        assert result["summary"].activation_read_reduction > 3.0

    def test_model_caching(self, fast_runner):
        snn_a, acc_a = fast_runner.lenet_snn(3)
        snn_b, acc_b = fast_runner.lenet_snn(3)
        assert acc_a == acc_b  # second call served from cache

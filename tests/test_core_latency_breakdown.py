"""Tests for the per-layer latency breakdown and cycle-formula details."""

import pytest

from repro.core import AcceleratorConfig, LatencyModel
from repro.core.calibration import LatencyCalibration
from repro.core.latency import (
    conv_layer_cycles,
    conv_pass_cycles,
    dram_stream_cycles,
    flatten_cycles,
    linear_layer_cycles,
    pool_layer_cycles,
)
from repro.models import performance_network


def small_net(num_steps=3):
    return performance_network(
        [("conv", 4, 3, 1, 1), ("pool", 2), ("conv", 8, 3, 1, 0),
         ("flatten",), ("linear", 20), ("linear", 5)],
        input_shape=(1, 12, 12), num_steps=num_steps)


class TestLayerLatencies:
    def test_breakdown_names_and_kinds(self):
        model = LatencyModel(AcceleratorConfig())
        layers = model.layer_latencies(small_net())
        assert [l.name for l in layers] == [
            "input", "conv1", "pool1", "conv2", "flatten", "fc1", "fc2"]
        assert layers[0].kind == "input"
        assert layers[1].kind == "conv"

    def test_total_is_sum_of_layers(self):
        model = LatencyModel(AcceleratorConfig())
        net = small_net()
        layers = model.layer_latencies(net)
        assert model.total_cycles(net) == sum(
            l.total_cycles for l in layers)

    def test_dram_cycles_only_on_weight_layers(self):
        model = LatencyModel(AcceleratorConfig())
        layers = model.layer_latencies(small_net(), weights_on_chip=False)
        for layer in layers:
            if layer.kind in ("conv", "linear"):
                assert layer.dram_cycles > 0
            else:
                assert layer.dram_cycles == 0

    def test_latency_us_consistent_with_cycles(self):
        config = AcceleratorConfig().with_clock(200.0)
        model = LatencyModel(config)
        net = small_net()
        assert model.latency_us(net) == pytest.approx(
            model.total_cycles(net) / 200.0)


class TestCycleFormulas:
    def test_conv_pass_cost_structure(self):
        net = small_net()
        spec = net.conv_layers()[0]  # padded: 14 rows
        cal = LatencyCalibration()
        cycles = conv_pass_cycles(spec, cal)
        assert cycles == 14 * (3 + cal.conv_row_overhead) \
            + cal.conv_channel_fill

    def test_conv_layer_scales_with_groups_and_t(self):
        net = small_net()
        spec = net.conv_layers()[1]
        config1 = AcceleratorConfig().with_units(1)
        config8 = AcceleratorConfig().with_units(8)
        assert conv_layer_cycles(spec, config8, num_steps=3) < \
            conv_layer_cycles(spec, config1, num_steps=3)
        t3 = conv_layer_cycles(spec, config1, num_steps=3)
        t6 = conv_layer_cycles(spec, config1, num_steps=6)
        cal = LatencyCalibration()
        assert t6 - cal.layer_setup == pytest.approx(
            2 * (t3 - cal.layer_setup))

    def test_pool_cycles_channel_serial(self):
        net = small_net()
        spec = net.pool_layers()[0]
        config = AcceleratorConfig()
        t = pool_layer_cycles(spec, config, num_steps=2)
        cal = LatencyCalibration()
        per_channel = spec.in_shape[1] * (2 + cal.pool_row_overhead)
        expected = (spec.in_shape[0] * 2 * (per_channel
                                            + cal.pool_pass_setup)
                    + cal.layer_setup)
        assert t == expected

    def test_linear_cycles_block_structure(self):
        net = small_net()
        spec = net.linear_layers()[0]  # 128 -> 20
        config = AcceleratorConfig()  # 21 parallel outputs
        cal = LatencyCalibration()
        cycles = linear_layer_cycles(spec, config, num_steps=1)
        blocks = -(-spec.out_features // 21)
        assert cycles == (blocks * (spec.in_features
                                    + cal.linear_block_flush)
                          + cal.linear_pass_setup) + cal.layer_setup

    def test_flatten_transfer_width(self):
        net = small_net()
        flatten = [l for l in net.layers if l.kind == "flatten"][0]
        config = AcceleratorConfig()
        cycles = flatten_cycles(flatten, config, num_steps=4)
        bits = flatten.out_features * 4
        assert cycles == -(-bits // config.memory.bram_width_bits)

    def test_dram_stream_rounding(self):
        config = AcceleratorConfig()
        base = config.memory.dram_burst_setup_cycles
        assert dram_stream_cycles(64, config) == 1 + base
        assert dram_stream_cycles(65, config) == 2 + base

    def test_custom_calibration_changes_costs(self):
        net = small_net()
        spec = net.conv_layers()[0]
        config = AcceleratorConfig()
        slow = LatencyCalibration(conv_row_overhead=50)
        default_cycles = conv_layer_cycles(spec, config, num_steps=2)
        slow_cycles = conv_layer_cycles(spec, config, slow, num_steps=2)
        assert slow_cycles > default_cycles

"""The telemetry plane: tracing, the unified registry, exposition.

The contracts pinned here:

* a traced request served over a **mixed** thread / process / remote-TCP
  lane group yields one connected span tree — every span's parent is in
  the tree (no orphans), worker-side ``lane_execute`` spans merge back
  across process and host boundaries, and the served predictions stay
  bit-identical to a direct engine run;
* the retroactive stage spans (admission → batch → dispatch → execute →
  reply) sum to the request's end-to-end span within 5% (by
  construction they sum exactly; the tolerance is the acceptance gate);
* tracing disabled is **free**: the tracer hands out the shared
  ``NULL_SPAN`` singleton, ``spans_started`` stays 0 across a full
  serve run, and the registry allocates no new series per request;
* the registry renders valid Prometheus text exposition (0.0.4) and a
  JSON mirror without breaking any legacy ``snapshot()`` shape;
* the HTTP scrape endpoint, the TCP ``op: "telemetry"`` / ``"traces"``
  surface, ``repro top`` rendering, heartbeat ages, chaos fault
  counters and the load generator's ``latency_out`` records all read
  from the same plane.
"""

import asyncio
import json
import urllib.request

import numpy as np
import pytest

from repro.models import performance_network
from repro.runtime import ChaosPolicy, WorkerServer
from repro.serve import (
    InferenceServer,
    LoadGenerator,
    ServerMetrics,
    TcpClient,
    start_tcp_server,
)
from repro.telemetry import (
    NULL_SPAN,
    FlightRecorder,
    MetricsRegistry,
    Span,
    Tracer,
    configure,
    get_registry,
    get_tracer,
    reset_telemetry,
    telemetry_summary,
)
from repro.telemetry.exposition import PROMETHEUS_CONTENT_TYPE, MetricsServer
from repro.telemetry.top import render_top


@pytest.fixture(autouse=True)
def _clean_telemetry():
    """Every test starts and ends at the boot state (tracing off)."""
    reset_telemetry()
    yield
    reset_telemetry()


def tiny_network(rng, num_steps=3):
    return performance_network(
        [("conv", 4, 3, 1, 1), ("pool", 2), ("flatten",), ("linear", 5)],
        input_shape=(1, 8, 8), num_steps=num_steps,
        seed=int(rng.integers(1 << 16)))


def direct_predictions(network, images):
    from repro.core import AcceleratorConfig, compile_network, create_engine
    engine = create_engine(
        "vectorized",
        compile_network(network, AcceleratorConfig.for_network(network)))
    logits, _ = engine.run_batch(images)
    return logits.argmax(axis=1)


# ----------------------------------------------------------------------
# Registry units
# ----------------------------------------------------------------------
class TestRegistry:
    def test_counter_gauge_histogram(self):
        reg = MetricsRegistry()
        c = reg.counter("jobs_total", "jobs", labelnames=("kind",))
        c.labels(kind="a").inc()
        c.labels(kind="a").inc(2)
        c.labels(kind="b").inc()
        assert c.labels(kind="a").value == 3.0
        assert c.value == 4.0

        g = reg.gauge("depth", "queue depth")
        g.set(7)
        g.inc(-2)
        assert g.value == 5.0

        h = reg.histogram("lat_ms", "latency", buckets=(1.0, 10.0))
        for v in (0.5, 5.0, 50.0):
            h.observe(v)
        child = h.labels()
        assert child.count == 3 and child.sum == 55.5
        assert child.counts == [1, 1, 1]  # <=1, <=10, +Inf

    def test_get_or_create_shares_and_type_checks(self):
        reg = MetricsRegistry()
        a = reg.counter("n", "first")
        b = reg.counter("n", "second registration ignored")
        assert a is b
        with pytest.raises(TypeError):
            reg.gauge("n")

    def test_labels_children_are_cached(self):
        """The per-request path is a cached-child lookup, never an
        allocation: asking for the same label set twice returns the
        same object and num_series stays put."""
        reg = MetricsRegistry()
        fam = reg.counter("x_total", "", labelnames=("lane",))
        child = fam.labels(lane="w0")
        before = reg.num_series
        for _ in range(100):
            assert fam.labels(lane="w0") is child
        assert reg.num_series == before

    def test_prometheus_text_format(self):
        reg = MetricsRegistry()
        reg.counter("reqs_total", "requests",
                    labelnames=("deployment",)).labels(
                        deployment="lenet:3").inc(5)
        h = reg.histogram("lat_ms", "latency", buckets=(1.0, 10.0))
        h.observe(0.5)
        h.observe(5.0)
        text = reg.to_prometheus()
        lines = text.strip().splitlines()
        assert "# HELP lat_ms latency" in lines
        assert "# TYPE lat_ms histogram" in lines
        assert "# TYPE reqs_total counter" in lines
        assert 'reqs_total{deployment="lenet:3"} 5' in lines
        assert 'lat_ms_bucket{le="1"} 1' in lines
        assert 'lat_ms_bucket{le="10"} 2' in lines
        assert 'lat_ms_bucket{le="+Inf"} 2' in lines
        assert "lat_ms_sum 5.5" in lines
        assert "lat_ms_count 2" in lines
        # Every non-comment line is "name{labels} value" — parseable.
        for line in lines:
            if not line.startswith("#"):
                name_part, value = line.rsplit(" ", 1)
                assert name_part
                float(value.replace("+Inf", "inf"))

    def test_to_dict_mirrors_series(self):
        reg = MetricsRegistry()
        reg.counter("c_total", "help here",
                    labelnames=("k",)).labels(k="v").inc(2)
        payload = reg.to_dict()
        assert payload["c_total"]["type"] == "counter"
        assert payload["c_total"]["help"] == "help here"
        assert payload["c_total"]["series"] == [
            {"labels": {"k": "v"}, "value": 2.0}]
        json.dumps(payload)  # wire-safe

    def test_samplers_run_at_scrape_time(self):
        reg = MetricsRegistry()
        state = {"depth": 3}
        reg.register_sampler(
            lambda: reg.gauge("d", "").set(state["depth"]))
        assert "d 3" in reg.to_prometheus()
        state["depth"] = 9
        assert "d 9" in reg.to_prometheus()


# ----------------------------------------------------------------------
# Tracer units
# ----------------------------------------------------------------------
class TestTracer:
    def test_disabled_hands_out_the_null_singleton(self):
        tracer = Tracer(enabled=False)
        span = tracer.span("request")
        assert span is NULL_SPAN
        assert not span  # falsy, so `if request.span:` skips all work
        span.set(anything=1)
        assert span.finish() is NULL_SPAN
        assert tracer.spans_started == 0
        assert tracer.spans_finished == 0

    def test_span_tree_and_context_propagation(self):
        tracer = Tracer(enabled=True)
        root = tracer.span("request")
        child = tracer.span("execute", parent=root)
        assert child.trace_id == root.trace_id
        assert child.parent_id == root.span_id
        # A worker on the far side of a wire continues the context.
        remote = Span.child_of(child.context(), "lane_execute")
        assert remote.trace_id == root.trace_id
        assert remote.parent_id == child.span_id

    def test_explicit_boundaries_sum_exactly(self):
        tracer = Tracer(enabled=True)
        t0, t1, t2 = 100.0, 100.25, 100.75
        root = tracer.span("request", started_at=t0)
        a = tracer.span("wait", parent=root, started_at=t0).finish(at=t1)
        b = tracer.span("run", parent=root, started_at=t1).finish(at=t2)
        root.finish(at=t2)
        assert a.duration_ms + b.duration_ms == pytest.approx(
            root.duration_ms)

    def test_record_foreign_merges_and_recorder_groups(self):
        tracer = Tracer(enabled=True)
        root = tracer.span("request")
        foreign = Span.child_of(root.context(), "lane_execute")
        foreign.finish()
        tracer.record_foreign([foreign.to_dict()])
        root.finish()
        traces = tracer.recorder.traces()
        assert len(traces) == 1
        assert traces[0]["trace_id"] == root.trace_id
        assert traces[0]["num_spans"] == 2
        assert traces[0]["root"] == "request"

    def test_recorder_is_bounded(self):
        recorder = FlightRecorder(capacity=8)
        for i in range(50):
            recorder.record({"trace_id": f"t{i}", "name": "x",
                             "parent_id": None, "duration_ms": 1.0})
        assert len(recorder.spans()) == 8

    def test_summary_rolls_up_per_stage(self):
        configure(tracing=True)
        tracer = get_tracer()
        tracer.span("execute", started_at=0.0).finish(at=0.010)
        tracer.span("execute", started_at=0.0).finish(at=0.020)
        summary = telemetry_summary()
        assert summary["tracing_enabled"] is True
        assert summary["spans_total"] == 2
        assert summary["per_stage_spans"] == {"execute": 2}
        assert summary["per_stage_ms"]["execute"] == pytest.approx(
            30.0, abs=0.01)


# ----------------------------------------------------------------------
# The acceptance contract: one connected trace across a mixed fabric
# ----------------------------------------------------------------------
class TestMixedFabricTrace:
    def test_mixed_lanes_single_connected_trace(self, rng):
        """Thread + process + remote-TCP lanes, traced: every request's
        span tree is connected (no orphans), stage durations sum to the
        end-to-end span within 5%, remote lane spans are attributed and
        cross the wire, and predictions are bit-identical to direct."""
        net = tiny_network(rng)
        images = rng.random((8,) + net.input_shape)
        expected = direct_predictions(net, images)

        configure(tracing=True)
        tracer = get_tracer()

        worker = WorkerServer().start()
        spec = f"127.0.0.1:{worker.port}"

        async def serve(workers):
            async with InferenceServer(
                    net, max_batch=4, max_wait_ms=10.0,
                    workers=workers) as server:
                return await server.submit_many(images)

        try:
            results = asyncio.run(serve([spec, "process", "thread"]))
            # The mixed group does not guarantee which lane wins a
            # batch, so the remote leg below re-serves through the TCP
            # lane alone — that makes the wire crossing deterministic.
            remote_results = asyncio.run(serve([spec]))
        finally:
            worker.close()

        np.testing.assert_array_equal(
            [r.prediction for r in results], expected)

        spans = tracer.recorder.spans()
        by_trace: dict = {}
        for span in spans:
            by_trace.setdefault(span["trace_id"], []).append(span)
        # One trace per request per leg, each with its own id on the
        # result (the recorder holds both legs: 2 x 8 distinct traces).
        mixed_ids = {r.trace_id for r in results}
        assert len(mixed_ids) == len(results)
        assert len(by_trace) == len(results) + len(
            {r.trace_id for r in remote_results})
        for result in results:
            tree = by_trace[result.trace_id]
            ids = {s["span_id"] for s in tree}
            orphans = [s for s in tree
                       if s["parent_id"] and s["parent_id"] not in ids]
            assert orphans == []  # connected: every parent is present
            request = next(s for s in tree if s["name"] == "request")
            stages = [s for s in tree
                      if s["parent_id"] == request["span_id"]
                      and s["name"] in ("admission", "batch", "dispatch",
                                        "execute", "reply")]
            assert sorted(s["name"] for s in stages) == [
                "admission", "batch", "dispatch", "execute", "reply"]
            stage_sum = sum(s["duration_ms"] for s in stages)
            assert stage_sum == pytest.approx(
                request["duration_ms"],
                rel=0.05)  # the ±5% acceptance gate
        # Every lane_execute merged back is attributed to its lane —
        # thread and process lanes stamp their own name, remote spans
        # get the client-edge lane identity stamped on merge.
        lane_spans = [s for s in spans if s["name"] == "lane_execute"]
        assert lane_spans, "no lane_execute spans merged back"
        assert all(s["attrs"].get("worker") for s in lane_spans)

        # Remote-only leg: every batch crossed the TCP hop, so each
        # request's tree must contain an exchange span (the wire-side
        # stage) parenting a lane_execute attributed to the remote lane.
        np.testing.assert_array_equal(
            [r.prediction for r in remote_results], expected)
        remote_ids = {r.trace_id for r in remote_results}
        remote_spans = [s for s in tracer.recorder.spans()
                        if s["trace_id"] in remote_ids]
        exchanges = {s["span_id"] for s in remote_spans
                     if s["name"] == "exchange"}
        remote_lane = [s for s in remote_spans
                       if s["name"] == "lane_execute"]
        assert remote_lane, "no lane_execute came back over the wire"
        for span in remote_lane:
            assert span["attrs"]["worker"].startswith("remote")
            assert span["parent_id"] in exchanges

    def test_overhead_guard_disabled_tracing_is_free(self, rng):
        """Tracing off: zero spans started and zero new registry series
        per request across a full serve run."""
        net = tiny_network(rng)
        images = rng.random((6,) + net.input_shape)

        async def run_once():
            async with InferenceServer(net, max_batch=4,
                                       max_wait_ms=5.0) as server:
                return await server.submit_many(images)

        asyncio.run(run_once())
        tracer = get_tracer()
        assert tracer.spans_started == 0
        assert tracer.spans_finished == 0
        assert tracer.recorder.spans() == []
        # Instruments exist (one series per label set), but more
        # requests must not allocate more series.
        series_after_first_run = get_registry().num_series
        asyncio.run(run_once())
        assert get_registry().num_series == series_after_first_run


# ----------------------------------------------------------------------
# Exposition: HTTP scrape + TCP op surface + top rendering
# ----------------------------------------------------------------------
class TestExposition:
    def test_http_endpoints(self):
        configure(tracing=True)
        get_registry().counter("probe_total", "probe").inc(3)
        get_tracer().span("request").finish()
        with MetricsServer(snapshot_fn=lambda: {"completed": 1}) as ms:
            with urllib.request.urlopen(f"{ms.url}/metrics") as reply:
                assert reply.headers["Content-Type"] == \
                    PROMETHEUS_CONTENT_TYPE
                text = reply.read().decode()
            assert "probe_total 3" in text
            with urllib.request.urlopen(f"{ms.url}/metrics.json") as reply:
                payload = json.loads(reply.read())
            assert payload["metrics"]["probe_total"]["series"][0][
                "value"] == 3.0
            assert payload["server"] == {"completed": 1}
            with urllib.request.urlopen(f"{ms.url}/traces?limit=4") as reply:
                traces = json.loads(reply.read())
            assert traces["traces"][0]["root"] == "request"
            with urllib.request.urlopen(f"{ms.url}/healthz") as reply:
                assert reply.read() == b"ok\n"

    def test_tcp_telemetry_and_traces_ops(self, rng):
        net = tiny_network(rng)
        images = rng.random((4,) + net.input_shape)
        configure(tracing=True)

        async def main():
            async with InferenceServer(net, max_batch=4) as server:
                tcp, port = await start_tcp_server(server)
                async with TcpClient("127.0.0.1", port) as client:
                    for image in images:
                        await client.infer(image)
                    telemetry = await client.telemetry()
                    traces = await client.traces(limit=8)
                tcp.close()
                await tcp.wait_closed()
                return telemetry, traces

        telemetry, traces = asyncio.run(main())
        assert telemetry["repro_requests_total"]["series"][0][
            "value"] == 4.0
        assert traces["traces"]  # the flight recorder answered live
        names = {s["name"] for t in traces["traces"] for s in t["spans"]}
        assert "lane_execute" in names and "request" in names

    def test_render_top_frame(self):
        snapshot = {
            "throughput_rps": 123.4, "queue_depth": 2, "completed": 10,
            "rejected": 1, "timed_out": 0, "deduped": 0,
            "per_deployment": {
                "lenet:3": {"throughput_rps": 123.4, "queue_depth": 2,
                            "mean_batch_size": 3.2, "completed": 10,
                            "latency_ms": {"p50": 4.0, "p99": 9.0},
                            "queue_wait_ms": {"p99": 2.0}}},
            "fabric": {"executed": {"thread-0": 10}, "stolen": 3,
                       "batched": 2, "retries": 0, "requeued": 0,
                       "worker_crashes": 0, "poisoned": 0, "deduped": 0,
                       "heartbeat_age_s": {"thread-0": 0.4}},
        }
        telemetry = {
            "repro_chaos_faults_total": {"series": [
                {"labels": {"site": "dispatch", "action": "kill"},
                 "value": 2}]},
            "repro_spans_finished": {"series": [{"labels": {},
                                                 "value": 70}]},
        }
        frame = render_top(snapshot, telemetry, target="127.0.0.1:7000")
        assert "repro top - 127.0.0.1:7000" in frame
        assert "lenet:3" in frame and "123.4" in frame
        assert "thread-0" in frame and "0.4" in frame
        assert "stolen=3" in frame
        assert "site=dispatch,action=kill: 2" in frame.replace(
            "action=kill,site=dispatch", "site=dispatch,action=kill")
        assert "tracing: 70 spans recorded" in frame


# ----------------------------------------------------------------------
# Satellites: heartbeat ages, chaos counters, codec bytes, latency_out
# ----------------------------------------------------------------------
class TestSatellites:
    def test_group_metrics_export_heartbeat_age(self, rng):
        net = tiny_network(rng)
        images = rng.random((2,) + net.input_shape)

        async def main():
            async with InferenceServer(net, engines=2) as server:
                await server.submit_many(images)
                return server.snapshot()

        snapshot = asyncio.run(main())
        ages = snapshot.fabric["heartbeat_age_s"]
        assert ages  # one entry per lane that ever heartbeat
        for age in ages.values():
            assert 0.0 <= age < 60.0

    def test_chaos_faults_feed_the_registry(self):
        policy = ChaosPolicy(kill={"lane-1": 1})
        assert policy.dispatch_fate("lane-1") == "kill"
        series = get_registry().to_dict()[
            "repro_chaos_faults_total"]["series"]
        assert series == [{"labels": {"site": "dispatch",
                                      "action": "kill"}, "value": 1.0}]
        # The legacy summary shape is untouched.
        assert policy.summary()["by_site"] == {"dispatch:kill": 1}

    def test_codec_byte_counters(self):
        from repro.runtime.codec import encode_frame, encode_line
        encode_line({"op": "ping"})
        encode_frame({"payload": True},
                     {"x": np.zeros((4, 4), dtype=np.float64)})
        series = get_registry().to_dict()[
            "repro_codec_bytes_total"]["series"]
        by_labels = {(s["labels"]["direction"], s["labels"]["encoding"]):
                     s["value"] for s in series}
        assert by_labels[("sent", "json")] > 0
        assert by_labels[("sent", "binary")] >= 128  # the array body

    def test_server_metrics_snapshot_shape_unchanged(self):
        """Feeding the registry must not change the legacy snapshot."""
        labeled = ServerMetrics(deployment="lenet:3")
        plain = ServerMetrics()
        for m in (labeled, plain):
            m.record(latency_ms=5.0, queue_wait_ms=1.0, service_ms=4.0,
                     batch_size=2)
            m.record_rejected()
        assert labeled.snapshot().to_dict().keys() == \
            plain.snapshot().to_dict().keys()
        # Only the labeled collector fed the registry (no double count).
        series = get_registry().to_dict()["repro_requests_total"]["series"]
        assert series == [{"labels": {"deployment": "lenet:3"},
                           "value": 1.0}]

    def test_loadgen_latency_out_records(self, rng, tmp_path):
        net = tiny_network(rng)
        images = rng.random((5,) + net.input_shape)
        out = tmp_path / "latency.jsonl"
        configure(tracing=True)

        async def main():
            async with InferenceServer(net, max_batch=4) as server:
                return await LoadGenerator(
                    server.submit, rate_rps=2000.0,
                    latency_out=str(out)).run(images)

        report = asyncio.run(main())
        assert report.completed == 5
        records = [json.loads(line)
                   for line in out.read_text().splitlines()]
        assert [r["index"] for r in records] == list(range(5))
        for record in records:
            assert record["ok"] is True
            assert record["latency_ms"] > 0
            assert record["trace_id"]  # joinable against the recorder
        recorded_ids = {s["trace_id"]
                        for s in get_tracer().recorder.spans()}
        assert {r["trace_id"] for r in records} <= recorded_ids

    def test_artifact_stamp_carries_telemetry(self, tmp_path):
        from benchmarks.conftest import write_artifact
        configure(tracing=True)
        get_tracer().span("execute", started_at=0.0).finish(at=0.005)
        path = tmp_path / "bench_probe.json"
        write_artifact(path, {"value": 1})
        payload = json.loads(path.read_text())
        assert payload["value"] == 1
        assert payload["telemetry"]["spans_total"] == 1
        assert "execute" in payload["telemetry"]["per_stage_ms"]

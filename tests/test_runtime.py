"""The runtime worker fabric: executors, stealing, liveness, codecs.

The contracts pinned here:

* any executor mix — thread, process, remote TCP — merges to results
  bit-identical to a single in-process lane (the fabric's acceptance
  contract, carried by integer logits and TraceMerge counters through
  the exact wire codec);
* work stealing only changes *scheduling*: a skewed static assignment
  with stealing enabled produces the same merged results, faster paths
  counted in ``metrics.stolen``;
* a worker dying mid-run deadlocks nothing — the group evicts it,
  requeues its in-flight and queued items on healthy lanes, and counts
  the crash; heartbeats evict silently dead lanes even when idle;
* the sweep driver and serving pool run entirely on the fabric, so a
  sweep spanning one in-process lane plus one TCP worker equals the
  serial run bit for bit.
"""

import os
import signal
import time

import numpy as np
import pytest

from repro.core import AcceleratorConfig
from repro.errors import (
    ConfigurationError,
    DeploymentError,
    WorkerCrashError,
)
from repro.harness.sweep import SweepDriver, SweepTask
from repro.models import performance_network
from repro.runtime import (
    Deployment,
    ProcessWorker,
    RemoteWorker,
    ThreadWorker,
    WorkItem,
    WorkerGroup,
    WorkerServer,
    create_workers,
    decode_array,
    decode_blob,
    encode_array,
    encode_blob,
    normalize_worker_specs,
)


def tiny_network(rng, num_steps=3):
    return performance_network(
        [("conv", 4, 3, 1, 1), ("pool", 2), ("flatten",), ("linear", 5)],
        input_shape=(1, 8, 8), num_steps=num_steps,
        seed=int(rng.integers(1 << 16)))


def tiny_deployment(rng):
    net = tiny_network(rng)
    return Deployment(network=net,
                      config=AcceleratorConfig.for_network(net))


def make_items(rng, deployment, count=4, images_each=3):
    shape = deployment.network.input_shape
    return [WorkItem(item_id=i, deployment=0,
                     images=rng.random((images_each,) + shape))
            for i in range(count)]


def run_group(workers, deployment, items, **group_kwargs):
    with WorkerGroup(workers, deployments=[deployment],
                     **group_kwargs) as group:
        results = group.run(items)
        metrics = group.metrics
    return results, metrics


class TestCodec:
    def test_array_roundtrip_bit_identical(self, rng):
        for array in (rng.random((3, 1, 8, 8)),
                      rng.integers(-5, 99, size=(4, 5)),
                      np.zeros((2, 0, 3))):
            restored = decode_array(encode_array(array))
            assert restored.dtype == array.dtype
            np.testing.assert_array_equal(restored, array)

    def test_blob_roundtrip_carries_deployments(self, rng):
        deployment = tiny_deployment(rng)
        restored = decode_blob(encode_blob([deployment]))[0]
        assert restored.backend == deployment.backend
        images = rng.random((2,) + deployment.network.input_shape)
        a, _ = deployment.engine().run_batch(images)
        b, _ = restored.engine().run_batch(images)
        np.testing.assert_array_equal(a, b)


class TestWorkerSpecs:
    def test_integer_counts(self):
        assert normalize_worker_specs(1) == ["thread"]
        assert normalize_worker_specs(3) == ["process"] * 3
        with pytest.raises(ConfigurationError):
            normalize_worker_specs(0)

    def test_spec_strings_and_multipliers(self):
        assert normalize_worker_specs(["thread", "process:2"]) == \
            ["thread", "process", "process"]
        assert normalize_worker_specs("10.0.0.5:7601") == ["10.0.0.5:7601"]
        with pytest.raises(ConfigurationError):
            normalize_worker_specs(["fiber"])
        with pytest.raises(ConfigurationError):
            normalize_worker_specs(["host:notaport"])
        with pytest.raises(ConfigurationError):
            normalize_worker_specs([])

    def test_create_workers_kinds_and_names(self):
        workers = create_workers(["thread", "process", "127.0.0.1:1"])
        assert [w.kind for w in workers] == ["thread", "process", "remote"]
        assert len({w.name for w in workers}) == 3


class TestExecutorEquivalence:
    def test_thread_process_remote_bit_identical(self, rng):
        """The fabric's core contract: executor choice never shows."""
        deployment = tiny_deployment(rng)
        items = make_items(rng, deployment, count=5)
        baseline, _ = run_group([ThreadWorker()], deployment, items)

        server = WorkerServer().start()
        try:
            for workers in ([ProcessWorker()],
                            [RemoteWorker("127.0.0.1", server.port)],
                            create_workers(["thread", "process",
                                            f"127.0.0.1:{server.port}"])):
                results, metrics = run_group(workers, deployment, items)
                for base, other in zip(baseline, results):
                    np.testing.assert_array_equal(base.logits,
                                                  other.logits)
                    assert base.merged_trace() == other.merged_trace()
                assert sum(metrics.executed.values()) == len(items)
        finally:
            server.close()

    def test_results_return_in_input_order(self, rng):
        deployment = tiny_deployment(rng)
        items = make_items(rng, deployment, count=6)
        results, _ = run_group(create_workers(["thread", "thread"]),
                               deployment, items)
        assert [r.item_id for r in results] == [i.item_id for i in items]

    def test_task_error_fails_item_not_lane(self, rng):
        """A bad work item errors its own future; the lane lives on."""
        deployment = tiny_deployment(rng)
        good = make_items(rng, deployment, count=2)
        bad = WorkItem(item_id=99, deployment=0,
                       images=rng.random((2, 3, 3)))  # wrong rank
        with WorkerGroup([ThreadWorker()],
                         deployments=[deployment]) as group:
            with pytest.raises(Exception):
                group.run([bad])
            results = group.run(good)   # lane still healthy
            assert len(results) == 2
            assert group.metrics.worker_crashes == 0


class TestWorkStealing:
    def test_skewed_static_assignment_steals_and_matches(self, rng):
        """Stealing rebalances a skewed assignment without changing
        the merged outcome."""
        deployment = tiny_deployment(rng)
        items = make_items(rng, deployment, count=8)
        baseline, _ = run_group([ThreadWorker()], deployment, items)

        # Pin everything to lane 0; lane 1 only gets work by stealing.
        workers = create_workers(["thread", "thread"])
        with WorkerGroup(workers, deployments=[deployment],
                         steal=True) as group:
            stolen_results = group.run(items,
                                       assignment=[0] * len(items))
            assert group.metrics.stolen > 0
            assert group.metrics.executed[workers[1].name] > 0
        for base, other in zip(baseline, stolen_results):
            np.testing.assert_array_equal(base.logits, other.logits)
            assert base.merged_trace() == other.merged_trace()

    def test_steal_disabled_pins_items(self, rng):
        deployment = tiny_deployment(rng)
        items = make_items(rng, deployment, count=6)
        workers = create_workers(["thread", "thread"])
        with WorkerGroup(workers, deployments=[deployment],
                         steal=False) as group:
            group.run(items, assignment=[0] * len(items))
            assert group.metrics.stolen == 0
            assert group.metrics.executed[workers[0].name] == len(items)
            assert group.metrics.executed[workers[1].name] == 0


class TestCrashRecovery:
    def test_dead_process_worker_requeues_on_healthy_lane(self, rng):
        """A killed child must not deadlock the group: its items move
        to a healthy lane and the crash is counted."""
        deployment = tiny_deployment(rng)
        items = make_items(rng, deployment, count=4)
        baseline, _ = run_group([ThreadWorker()], deployment, items)

        workers = [ProcessWorker(name="doomed"),
                   ThreadWorker(name="healthy")]
        with WorkerGroup(workers, deployments=[deployment], steal=False,
                         heartbeat_s=30.0) as group:
            os.kill(workers[0].pid, signal.SIGKILL)
            futures = [group.submit(item, worker=0) for item in items]
            results = [f.result(timeout=60) for f in futures]
            assert group.metrics.worker_crashes == 1
            assert group.metrics.requeued >= 1
            assert group.metrics.executed["healthy"] == len(items)
            assert group.alive_workers() == ["healthy"]
        for base, other in zip(baseline, results):
            np.testing.assert_array_equal(base.logits, other.logits)
            assert base.merged_trace() == other.merged_trace()

    def test_all_workers_dead_fails_fast(self, rng):
        deployment = tiny_deployment(rng)
        worker = ProcessWorker()
        with WorkerGroup([worker], deployments=[deployment],
                         heartbeat_s=30.0) as group:
            os.kill(worker.pid, signal.SIGKILL)
            future = group.submit(make_items(rng, deployment, 1)[0])
            with pytest.raises(WorkerCrashError):
                future.result(timeout=60)
            assert group.metrics.worker_crashes == 1

    def test_healthy_run_reports_zero_fault_counters(self, rng):
        """The fault-path counters exist (and stay zero) on a clean
        run, so dashboards can key on them unconditionally."""
        deployment = tiny_deployment(rng)
        items = make_items(rng, deployment, count=4)
        _, metrics = run_group([ThreadWorker(name="a"),
                                ThreadWorker(name="b")],
                               deployment, items)
        payload = metrics.to_dict()
        for counter in ("requeued", "retries", "poisoned", "deduped"):
            assert payload[counter] == 0
        assert metrics.worker_crashes == 0

    def test_heartbeat_evicts_silently_dead_remote(self, rng):
        """An idle lane whose host vanished is evicted by the monitor."""
        deployment = tiny_deployment(rng)
        server = WorkerServer().start()
        workers = [RemoteWorker("127.0.0.1", server.port, name="gone"),
                   ThreadWorker(name="stay")]
        with WorkerGroup(workers, deployments=[deployment],
                         heartbeat_s=0.05) as group:
            group.run(make_items(rng, deployment, 2))
            server.close()  # host dies while the fabric is idle
            deadline = time.time() + 10
            while ("gone" in group.alive_workers()
                   and time.time() < deadline):
                time.sleep(0.05)
            assert group.alive_workers() == ["stay"]
            assert group.metrics.worker_crashes == 1
            # The survivor keeps serving.
            results = group.run(make_items(rng, deployment, 2))
            assert all(r.worker == "stay" for r in results)

    def test_unreachable_remote_at_start_is_tolerated(self, rng):
        """A dead host in the spec list degrades, not aborts, the group."""
        deployment = tiny_deployment(rng)
        server = WorkerServer().start()
        port = server.port
        server.close()  # nothing listens here any more
        workers = [RemoteWorker("127.0.0.1", port, name="unreachable"),
                   ThreadWorker(name="local")]
        with WorkerGroup(workers, deployments=[deployment],
                         heartbeat_s=30.0) as group:
            results = group.run(make_items(rng, deployment, 3))
            assert group.metrics.worker_crashes == 1
            assert all(r.worker == "local" for r in results)

    def test_second_eviction_report_still_places_in_flight_item(
            self, rng):
        """Monitor and dispatcher may both report one death; the
        dispatcher's in-flight item must be requeued either way, not
        dropped (a dropped item = a future that never resolves)."""
        from repro.runtime.group import _Pending

        deployment = tiny_deployment(rng)
        item = make_items(rng, deployment, 1)[0]
        workers = create_workers(["thread", "thread"])
        with WorkerGroup(workers, deployments=[deployment]) as group:
            pending = _Pending(item)
            pending.attempts = 1
            group._evict(0, WorkerCrashError("monitor saw it first"))
            group._evict(0, WorkerCrashError("dispatcher, mid-batch"),
                         in_flight=pending)
            result = pending.future.result(timeout=30)
            assert result.worker == workers[1].name
            assert group.metrics.worker_crashes == 1  # one death, once
            assert group.metrics.requeued >= 1

    def test_stop_fails_queued_items(self, rng):
        deployment = tiny_deployment(rng)
        group = WorkerGroup([ThreadWorker()], deployments=[deployment])
        group.start()
        group.stop()
        with pytest.raises(ConfigurationError):
            group.submit(make_items(rng, deployment, 1)[0])


class TestRemoteProtocol:
    def test_execute_before_deploy_is_task_error(self, rng):
        """Misrouted work answers with the typed DeploymentError."""
        deployment = tiny_deployment(rng)
        with WorkerServer() as server:
            worker = RemoteWorker("127.0.0.1", server.port)
            worker.start()
            try:
                with pytest.raises(DeploymentError):
                    worker.execute(make_items(rng, deployment, 1)[0])
                # The lane survives a task error and deploys fine after.
                worker.deploy([deployment])
                result = worker.execute(make_items(rng, deployment, 1)[0])
                assert result.logits.shape[0] == 3
            finally:
                worker.close()

    def test_ping_and_pid(self, rng):
        with WorkerServer() as server:
            worker = RemoteWorker("127.0.0.1", server.port)
            worker.start()
            try:
                assert worker.ping(timeout_s=5.0)
            finally:
                worker.close()

    def test_two_lanes_one_server(self, rng):
        """Two RemoteWorker lanes may share one host (two connections)."""
        deployment = tiny_deployment(rng)
        items = make_items(rng, deployment, count=4)
        baseline, _ = run_group([ThreadWorker()], deployment, items)
        with WorkerServer() as server:
            spec = f"127.0.0.1:{server.port}"
            results, metrics = run_group(
                create_workers([spec, spec]), deployment, items)
        for base, other in zip(baseline, results):
            np.testing.assert_array_equal(base.logits, other.logits)
        assert sum(metrics.executed.values()) == len(items)


class TestSweepOnFabric:
    def _task(self, rng, key="cell", num_images=24):
        net = tiny_network(rng)
        return SweepTask(key=key, network=net,
                         config=AcceleratorConfig.for_network(net),
                         images=rng.random((num_images,)
                                           + net.input_shape),
                         labels=rng.integers(0, 5, size=num_images))

    def test_mixed_inprocess_plus_tcp_equals_serial(self, rng):
        """The PR's acceptance bar: one in-process lane + one TCP
        remote worker merge bit-identically to the serial run."""
        task = self._task(rng)
        serial = SweepDriver(workers=1,
                             shard_size=task.num_images).run(
            [task])[task.key]
        with WorkerServer() as server:
            driver = SweepDriver(
                workers=["thread", f"127.0.0.1:{server.port}"],
                shard_size=5)
            fabric = driver.run([task])[task.key]
            summary = driver.last_summary
        np.testing.assert_array_equal(fabric.predictions,
                                      serial.predictions)
        assert fabric.trace == serial.trace
        assert fabric.correct == serial.correct
        assert fabric.accuracy == serial.accuracy
        assert summary.workers == 2
        assert summary.executors[0] == "thread"
        assert summary.worker_crashes == 0

    def test_driver_surfaces_crash_count(self, rng):
        """A lane dying mid-sweep: results intact, crash in summary."""
        task = self._task(rng, num_images=30)
        serial = SweepDriver(workers=1, shard_size=30).run(
            [task])[task.key]
        with WorkerServer() as server:
            driver = SweepDriver(
                workers=["thread", f"127.0.0.1:{server.port}"],
                shard_size=3, heartbeat_s=30.0)
            # Kill the host the moment the first shard completes: some
            # of the remote lane's work requeues onto the thread lane.
            driver.progress = lambda tick: (server.close()
                                            if tick.done_units == 1
                                            else None)
            outcome = driver.run([task])[task.key]
        np.testing.assert_array_equal(outcome.predictions,
                                      serial.predictions)
        assert outcome.trace == serial.trace
        # The server may or may not have finished items before dying;
        # the summary must reflect whatever the fabric observed.
        assert driver.last_summary.worker_crashes in (0, 1)

    def test_sweep_rejects_bad_specs(self):
        with pytest.raises(ConfigurationError):
            SweepDriver(workers=0)
        with pytest.raises(ConfigurationError):
            SweepDriver(workers=["warp-drive"])


class TestChunkTimeouts:
    """The chunk deadline is the tightest surviving item budget."""

    def test_min_of_bounded_budgets(self, rng):
        from repro.runtime.work import chunk_timeout_s
        deployment = tiny_deployment(rng)
        shape = deployment.network.input_shape

        def item(timeout):
            return WorkItem(item_id=0, deployment=0,
                            images=rng.random((1,) + shape),
                            timeout_s=timeout)

        assert chunk_timeout_s([item(None), item(None)]) is None
        assert chunk_timeout_s([item(5.0), item(2.0), item(9.0)]) == 2.0
        # One unbounded sibling must NOT disable the others' protection
        # (the old sum-based aggregation returned None here).
        assert chunk_timeout_s([item(None), item(3.0)]) == 3.0
        # Nor may the deadline inflate with chunk size (the old code
        # summed: 3 items x 2 s gave 6 s).
        assert chunk_timeout_s([item(2.0)] * 3) == 2.0

    def test_chunk_deadline_crashes_hung_process_lane(self, rng):
        """A chunk overrunning the tightest item budget surfaces as a
        lane crash (close + WorkerCrashError), not an eternal wait."""
        deployment = tiny_deployment(rng)
        worker = ProcessWorker(name="hung")
        worker.start()
        try:
            worker.deploy([deployment])
            items = [WorkItem(item_id=i, deployment=0,
                              images=rng.random(
                                  (1,) + deployment.network.input_shape),
                              timeout_s=1e-9)
                     for i in range(2)]
            with pytest.raises(WorkerCrashError):
                worker.execute_many(items)
        finally:
            worker.close()


class TestWindowedDispatch:
    """Pipelined lanes: send/collect split, credits, telemetry."""

    def test_windowed_process_lane_bit_identical(self, rng):
        deployment = tiny_deployment(rng)
        items = make_items(rng, deployment, count=10, images_each=2)
        serial, _ = run_group([ThreadWorker()], deployment,
                              [WorkItem(item_id=i.item_id, deployment=0,
                                        images=i.images)
                               for i in items])
        with WorkerGroup([ProcessWorker(name="piped")],
                         deployments=[deployment], window=2,
                         max_batch_items=2) as group:
            results = group.run(items)
            metrics = group.metrics
        assert metrics.pipelined >= 2
        assert sum(metrics.executed.values()) == len(items)
        for base, other in zip(serial, results):
            np.testing.assert_array_equal(base.logits, other.logits)
            assert base.merged_trace() == other.merged_trace()

    def test_windowed_remote_lane_bit_identical(self, rng):
        deployment = tiny_deployment(rng)
        items = make_items(rng, deployment, count=10, images_each=2)
        serial, _ = run_group([ThreadWorker()], deployment,
                              [WorkItem(item_id=i.item_id, deployment=0,
                                        images=i.images)
                               for i in items])
        with WorkerServer() as server:
            with WorkerGroup([RemoteWorker("127.0.0.1", server.port,
                                           name="wire")],
                             deployments=[deployment], window=4,
                             max_batch_items=2) as group:
                results = group.run(items)
                metrics = group.metrics
        assert metrics.pipelined >= 2
        for base, other in zip(serial, results):
            np.testing.assert_array_equal(base.logits, other.logits)
            assert base.merged_trace() == other.merged_trace()

    def test_window_negotiation_and_validation(self, rng):
        from repro.runtime.remote import _MAX_REMOTE_WINDOW
        with pytest.raises(Exception):
            WorkerServer(window=0)
        with pytest.raises(ConfigurationError):
            WorkerGroup([ThreadWorker()], deployments=[], window=0)
        with WorkerServer(window=2) as server:
            worker = RemoteWorker("127.0.0.1", server.port)
            worker.start()
            try:
                # The server's advertisement caps the client's window.
                assert worker.pipeline_depth == 2
                assert worker.pipeline_depth <= _MAX_REMOTE_WINDOW
            finally:
                worker.close()

    def test_thread_lanes_stay_stop_and_wait(self, rng):
        deployment = tiny_deployment(rng)
        items = make_items(rng, deployment, count=6)
        results, metrics = run_group([ThreadWorker()], deployment,
                                     items, window=4)
        assert metrics.pipelined == 0
        assert sum(metrics.executed.values()) == len(items)

    def test_inflight_telemetry_feeds_registry(self, rng):
        from repro.telemetry import get_registry
        get_registry().reset()
        deployment = tiny_deployment(rng)
        items = make_items(rng, deployment, count=8, images_each=2)
        with WorkerGroup([ProcessWorker(name="gauged")],
                         deployments=[deployment], window=2,
                         max_batch_items=2) as group:
            group.run(items)
        telemetry = get_registry().to_dict()
        gauge = telemetry["repro_fabric_inflight_chunks"]
        lanes = {entry["labels"]["lane"] for entry in gauge["series"]}
        assert "gauged" in lanes
        occupancy = telemetry["repro_fabric_window_occupancy"]
        [series] = [entry for entry in occupancy["series"]
                    if entry["labels"]["lane"] == "gauged"]
        assert series["count"] >= 2          # one observation per send
        assert series["sum"] >= series["count"]  # depths are >= 1

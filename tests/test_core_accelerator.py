"""End-to-end tests of the functional accelerator: bit-exactness against
the SNN reference, cycle agreement with the analytic model, and the
facade's reporting."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    Accelerator,
    AcceleratorConfig,
    Controller,
    LatencyModel,
    compile_network,
)
from repro.errors import CompilationError, ShapeError, SimulationError
from repro.models import performance_network
from repro.snn import SNNModel


def random_network(seed=0, num_steps=3):
    """A small but structurally complete network (conv/pool/fc, padding)."""
    return performance_network(
        [("conv", 4, 3, 1, 1), ("pool", 2), ("conv", 6, 3, 1, 0),
         ("flatten",), ("linear", 16), ("linear", 5)],
        input_shape=(1, 10, 10), num_steps=num_steps, seed=seed)


class TestFunctionalExactness:
    @given(st.integers(min_value=2, max_value=5),
           st.integers(min_value=0, max_value=20),
           st.integers(min_value=1, max_value=3))
    @settings(max_examples=8, deadline=None)
    def test_accelerator_equals_reference(self, num_steps, seed, units):
        net = random_network(seed=seed, num_steps=num_steps)
        snn = SNNModel(net)
        config = AcceleratorConfig.for_network(net, num_conv_units=units)
        accelerator = Accelerator(config)
        accelerator.deploy(snn)
        rng = np.random.default_rng(seed + 1)
        images = rng.random((2,) + net.input_shape)
        expected = snn.forward_ints(images)
        for i in range(2):
            logits, _ = accelerator.run_image(images[i])
            np.testing.assert_array_equal(logits, expected[i])

    def test_batch_predictions(self):
        net = random_network()
        snn = SNNModel(net)
        accelerator = Accelerator(AcceleratorConfig.for_network(net))
        accelerator.deploy(snn)
        images = np.random.default_rng(0).random((3,) + net.input_shape)
        preds, traces = accelerator.run(images)
        np.testing.assert_array_equal(preds, snn.predict(images))
        assert len(traces) == 3

    def test_functional_cycles_match_analytic_model(self):
        """The controller charges cycles from the same formulas as the
        analytic model — totals must agree exactly."""
        net = random_network()
        snn = SNNModel(net)
        config = AcceleratorConfig.for_network(net, num_conv_units=2)
        accelerator = Accelerator(config)
        accelerator.deploy(snn)
        image = np.random.default_rng(1).random(net.input_shape)
        _, trace = accelerator.run_image(image)
        analytic = LatencyModel(config).total_cycles(net)
        assert trace.total_cycles == analytic

    def test_trace_layer_names(self):
        net = random_network()
        snn = SNNModel(net)
        accelerator = Accelerator(AcceleratorConfig.for_network(net))
        accelerator.deploy(snn)
        _, trace = accelerator.run_image(
            np.random.default_rng(2).random(net.input_shape))
        assert [l.name for l in trace.layers] == [
            "conv1", "pool1", "conv2", "flatten", "fc1", "fc2"]

    def test_adder_ops_track_spikes(self):
        """A brighter image must trigger more adder operations."""
        net = random_network()
        snn = SNNModel(net)
        accelerator = Accelerator(AcceleratorConfig.for_network(net))
        accelerator.deploy(snn)
        _, dark = accelerator.run_image(np.zeros(net.input_shape))
        _, bright = accelerator.run_image(np.full(net.input_shape, 0.9))
        assert bright.total_adder_ops > dark.total_adder_ops


class TestAcceleratorFacade:
    def test_run_before_deploy_raises(self):
        accelerator = Accelerator(AcceleratorConfig())
        with pytest.raises(CompilationError):
            accelerator.run_image(np.zeros((1, 10, 10)))

    def test_wrong_image_shape_raises(self):
        net = random_network()
        accelerator = Accelerator(AcceleratorConfig.for_network(net))
        accelerator.deploy(SNNModel(net))
        with pytest.raises(ShapeError):
            accelerator.run_image(np.zeros((1, 8, 8)))
        with pytest.raises(ShapeError):
            accelerator.run(np.zeros((1, 8, 8)))

    def test_report_fields(self):
        net = random_network()
        accelerator = Accelerator(
            AcceleratorConfig.for_network(net, num_conv_units=2,
                                          clock_mhz=200.0))
        accelerator.deploy(SNNModel(net), name="tiny")
        report = accelerator.report(accuracy=0.93)
        assert report.model_name == "tiny"
        assert report.clock_mhz == 200.0
        assert report.latency_us == pytest.approx(
            report.cycles * 0.005)
        assert report.throughput_fps == pytest.approx(
            1e6 / report.latency_us)
        assert report.accuracy == 0.93
        assert report.luts > 0 and report.ffs > 0
        assert "tiny" in report.summary()

    def test_estimates_consistent_with_report(self):
        net = random_network()
        accelerator = Accelerator(AcceleratorConfig.for_network(net))
        accelerator.deploy(SNNModel(net))
        report = accelerator.report()
        assert report.cycles == accelerator.estimate_cycles()
        assert report.power_w == pytest.approx(
            accelerator.estimate_power_w())

    def test_zero_cycle_estimate_raises_clearly(self, monkeypatch):
        """A degenerate deployment estimating 0 cycles must raise a
        SimulationError instead of dividing by zero in throughput/energy."""
        net = random_network()
        accelerator = Accelerator(AcceleratorConfig.for_network(net))
        accelerator.deploy(SNNModel(net), name="degenerate")
        monkeypatch.setattr(accelerator, "estimate_cycles", lambda: 0)
        with pytest.raises(SimulationError, match="degenerate"):
            accelerator.report()


class TestControllerDramPath:
    def test_dram_cycles_charged_when_streaming(self):
        net = random_network()
        from repro.core.config import MemoryConfig
        config = AcceleratorConfig.for_network(net)
        config = AcceleratorConfig(
            num_conv_units=config.num_conv_units,
            conv_unit=config.conv_unit, pool_unit=config.pool_unit,
            memory=MemoryConfig(onchip_weight_capacity=1),
        )
        compiled = compile_network(net, config)
        assert not compiled.weights_on_chip
        controller = Controller(compiled)
        image = np.random.default_rng(0).random(net.input_shape)
        logits, trace = controller.run_image(image)
        conv_layers = [l for l in trace.layers if l.kind == "conv"]
        assert all(l.dram_cycles > 0 for l in conv_layers)
        # Bit-exactness must survive the DRAM path.
        expected = SNNModel(net).forward_ints(image[np.newaxis])[0]
        np.testing.assert_array_equal(logits, expected)

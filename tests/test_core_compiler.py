"""Tests for the compiler: scheduling, memory planning, capacity checks."""

import pytest

from repro.core import AcceleratorConfig, compile_network
from repro.core.config import ConvUnitConfig, MemoryConfig, PoolUnitConfig
from repro.errors import CompilationError
from repro.models import performance_network, vgg11_performance_network


def small_net(num_steps=3):
    return performance_network(
        [("conv", 6, 3, 1, 0), ("pool", 2), ("conv", 8, 3, 1, 0),
         ("flatten",), ("linear", 20), ("linear", 4)],
        input_shape=(1, 12, 12), num_steps=num_steps)


class TestCompileNetwork:
    def test_program_order_matches_layers(self):
        compiled = compile_network(small_net(), AcceleratorConfig())
        kinds = [p.kind for p in compiled.programs]
        assert kinds == ["conv", "pool", "conv", "flatten", "linear",
                         "linear"]
        names = [p.name for p in compiled.programs]
        assert names == ["conv1", "pool1", "conv2", "flatten", "fc1", "fc2"]

    def test_conv_schedule_covers_every_channel_once(self):
        compiled = compile_network(small_net(), AcceleratorConfig())
        for program in compiled.programs:
            if program.kind != "conv":
                continue
            seen = [c for rnd in program.conv_schedule.rounds
                    for grp in rnd for c in grp]
            assert sorted(seen) == list(range(program.spec.out_shape[0]))

    def test_rounds_respect_unit_count(self):
        config = AcceleratorConfig().with_units(2)
        compiled = compile_network(small_net(), config)
        for program in compiled.programs:
            if program.kind == "conv":
                for rnd in program.conv_schedule.rounds:
                    assert len(rnd) <= 2

    def test_more_units_fewer_rounds(self):
        net = small_net()
        r1 = compile_network(net, AcceleratorConfig().with_units(1))
        r4 = compile_network(net, AcceleratorConfig().with_units(4))
        rounds1 = r1.programs[0].conv_schedule.num_rounds
        rounds4 = r4.programs[0].conv_schedule.num_rounds
        assert rounds4 < rounds1

    def test_weight_bits_mismatch_rejected(self):
        net = performance_network(
            [("flatten",), ("linear", 2)], (1, 2, 2), num_steps=3,
            weight_bits=4)
        with pytest.raises(CompilationError):
            compile_network(net, AcceleratorConfig())  # config is 3-bit

    def test_kernel_too_tall_rejected(self):
        net = performance_network(
            [("conv", 2, 5, 1, 0), ("flatten",), ("linear", 2)],
            (1, 8, 8), num_steps=3)
        config = AcceleratorConfig(conv_unit=ConvUnitConfig(columns=8,
                                                            rows=3))
        with pytest.raises(CompilationError):
            compile_network(net, config)

    def test_pool_too_wide_rejected(self):
        net = performance_network(
            [("conv", 2, 3, 1, 0), ("pool", 2), ("flatten",),
             ("linear", 2)],
            (1, 20, 20), num_steps=3)
        config = AcceleratorConfig(
            conv_unit=ConvUnitConfig(columns=20, rows=3),
            pool_unit=PoolUnitConfig(columns=4, rows=2))
        with pytest.raises(CompilationError):
            compile_network(net, config)

    def test_small_net_weights_stay_on_chip(self):
        compiled = compile_network(small_net(), AcceleratorConfig())
        assert compiled.weights_on_chip

    def test_vgg_weights_stream_from_dram(self):
        """The paper's VGG-11 exceeds on-chip capacity (Section IV-D)."""
        net = vgg11_performance_network(num_steps=6)
        config = AcceleratorConfig.for_network(net, 8, 115.0)
        compiled = compile_network(net, config)
        assert not compiled.weights_on_chip

    def test_weight_capacity_threshold(self):
        net = small_net()
        tiny_memory = MemoryConfig(onchip_weight_capacity=10)
        config = AcceleratorConfig(
            conv_unit=ConvUnitConfig(columns=30, rows=5),
            memory=tiny_memory)
        compiled = compile_network(net, config)
        assert not compiled.weights_on_chip

    def test_activation_capacity_enforced(self):
        net = small_net()
        config = AcceleratorConfig(
            memory=MemoryConfig(activation_capacity=1))
        with pytest.raises(CompilationError):
            compile_network(net, config)

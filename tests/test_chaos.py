"""Chaos drills: the fabric's promises *under* injected faults.

The contracts pinned here:

* a :class:`~repro.runtime.ChaosPolicy` is a deterministic, replayable
  fault schedule — same seed, same faults — with explicit one-shot
  schedules, a fault budget, and an event log for post-run assertions;
* killing a lane / severing a remote connection mid-run degrades the
  group, never the answer: results stay bit-identical to a serial run
  and the exactly-once ledger keeps duplicates out;
* the serve TCP client survives duplicated, delayed and dropped frames
  and server hang-ups — every request is answered exactly once (the
  idempotency key + result ledger pair), reconnects are counted;
* replicated serving answers are runtime-asserted bit-identical, and a
  blue/green alias flip under live load drops nothing.

No pytest-asyncio in the toolchain: tests drive coroutines with
``asyncio.run`` explicitly.
"""

import asyncio
import socket
import threading
import time

import numpy as np
import pytest

from repro.core import AcceleratorConfig
from repro.errors import ConfigurationError, RolloutError
from repro.models import performance_network
from repro.runtime import (
    ChaosPolicy,
    Deployment,
    DeploymentRegistry,
    ProcessWorker,
    RemoteWorker,
    ThreadWorker,
    WorkItem,
    WorkerGroup,
    WorkerServer,
    create_workers,
    join_fabric,
    next_idempotency_key,
)
from repro.runtime.remote import _backoff_delay
from repro.runtime.work import ResultLedger
from repro.serve import InferenceServer, TcpClient, start_tcp_server


def tiny_network(rng, num_steps=3):
    return performance_network(
        [("conv", 4, 3, 1, 1), ("pool", 2), ("flatten",), ("linear", 5)],
        input_shape=(1, 8, 8), num_steps=num_steps,
        seed=int(rng.integers(1 << 16)))


def tiny_deployment(rng):
    net = tiny_network(rng)
    return Deployment(network=net,
                      config=AcceleratorConfig.for_network(net))


def make_items(rng, deployment, count=4, images_each=3):
    shape = deployment.network.input_shape
    return [WorkItem(item_id=i, deployment=0,
                     images=rng.random((images_each,) + shape))
            for i in range(count)]


def serial_baseline(deployment, items):
    with WorkerGroup([ThreadWorker()],
                     deployments=[deployment]) as group:
        return group.run([WorkItem(item_id=i.item_id, deployment=0,
                                   images=i.images)
                          for i in items])


def assert_bit_identical(baseline, results):
    for base, other in zip(baseline, results):
        np.testing.assert_array_equal(base.logits, other.logits)
        assert base.merged_trace() == other.merged_trace()


class TestChaosPolicy:
    def test_same_seed_replays_identical_schedule(self):
        fates = []
        for _ in range(2):
            policy = ChaosPolicy(seed=7, kill_prob=0.5)
            fates.append([policy.dispatch_fate("lane-a")
                          for _ in range(64)])
        assert fates[0] == fates[1]
        assert "kill" in fates[0] and None in fates[0]

    def test_different_seeds_differ(self):
        one = ChaosPolicy(seed=1, kill_prob=0.5)
        two = ChaosPolicy(seed=2, kill_prob=0.5)
        assert [one.dispatch_fate("x") for _ in range(64)] != \
            [two.dispatch_fate("x") for _ in range(64)]

    def test_explicit_kill_schedule_fires_once_at_draw(self):
        policy = ChaosPolicy(kill={"doomed": 3})
        fates = [policy.dispatch_fate("doomed") for _ in range(6)]
        assert fates == [None, None, "kill", None, None, None]
        assert policy.dispatch_fate("other") is None
        [event] = policy.events
        assert (event.site, event.lane, event.draw) == \
            ("dispatch", "doomed", 3)

    def test_max_faults_budget_caps_injection(self):
        policy = ChaosPolicy(seed=3, kill_prob=1.0, max_faults=2)
        fates = [policy.dispatch_fate("lane") for _ in range(10)]
        assert fates.count("kill") == 2
        assert len(policy.events) == 2

    def test_frame_fates_recorded_and_summarized(self):
        policy = ChaosPolicy(seed=5, dup_frame_prob=1.0, max_faults=3)
        assert [policy.frame_fate() for _ in range(4)] == \
            ["dup", "dup", "dup", None]
        summary = policy.summary()
        assert summary["faults"] == 3
        assert summary["by_site"] == {"client_frame:dup": 3}

    def test_probability_validation(self):
        with pytest.raises(ConfigurationError):
            ChaosPolicy(kill_prob=1.5)
        with pytest.raises(ConfigurationError):
            ChaosPolicy(drop_frame_prob=-0.1)


class TestLedger:
    def test_record_get_and_duplicate_count(self):
        ledger = ResultLedger(capacity=2)
        ledger.record("a", 1)
        ledger.record("b", 2)
        assert ledger.peek("a") is True
        assert ledger.get("a") == 1        # counted as a duplicate hit
        assert ledger.duplicates == 1
        ledger.record("c", 3)               # evicts the LRU entry
        assert ledger.peek("b") is False
        assert ledger.peek("a") is True     # touched above, kept

    def test_keys_are_unique(self):
        keys = {next_idempotency_key() for _ in range(512)}
        assert len(keys) == 512


class TestGroupUnderChaos:
    def test_scheduled_process_kill_bit_identical(self, rng):
        """Chaos SIGKILLs a process lane mid-run; the real eviction and
        requeue machinery recovers every item, answers once each."""
        deployment = tiny_deployment(rng)
        items = make_items(rng, deployment, count=6)
        baseline = serial_baseline(deployment, items)

        chaos = ChaosPolicy(kill={"doomed": 1})
        workers = [ProcessWorker(name="doomed"),
                   ThreadWorker(name="healthy")]
        with WorkerGroup(workers, deployments=[deployment],
                         chaos=chaos, heartbeat_s=30.0) as group:
            # Pin everything to the doomed lane: its first dispatch is
            # chaos-killed, so recovery has to move all of it.
            results = group.run(items, assignment=[0] * len(items))
            assert group.metrics.worker_crashes >= 1
            assert group.alive_workers() == ["healthy"]
        assert_bit_identical(baseline, results)
        assert any(e.action == "kill" for e in chaos.events)

    def test_scheduled_remote_sever_bit_identical(self, rng):
        """A severed TCP lane is evicted; its items finish elsewhere."""
        deployment = tiny_deployment(rng)
        items = make_items(rng, deployment, count=6)
        baseline = serial_baseline(deployment, items)

        server = WorkerServer().start()
        try:
            chaos = ChaosPolicy(sever={"cut": 1})
            workers = [RemoteWorker("127.0.0.1", server.port,
                                    name="cut"),
                       ThreadWorker(name="local")]
            with WorkerGroup(workers, deployments=[deployment],
                             chaos=chaos, heartbeat_s=30.0) as group:
                results = group.run(items)
                assert group.metrics.worker_crashes >= 1
            assert_bit_identical(baseline, results)
            assert any(e.action == "sever" for e in chaos.events)
        finally:
            server.close()

    def test_corrupted_heartbeat_evicts_healthy_lane(self, rng):
        """A lying liveness probe costs a lane, never an answer."""
        deployment = tiny_deployment(rng)
        items = make_items(rng, deployment, count=6)
        baseline = serial_baseline(deployment, items)

        chaos = ChaosPolicy(heartbeat_corrupt_prob=1.0, max_faults=1)
        with WorkerGroup(create_workers(["thread", "thread"]),
                         deployments=[deployment], chaos=chaos,
                         heartbeat_s=0.05) as group:
            deadline = time.time() + 10
            while (len(group.alive_workers()) > 1
                   and time.time() < deadline):
                time.sleep(0.02)
            assert len(group.alive_workers()) == 1
            results = group.run(items)
        assert_bit_identical(baseline, results)

    def test_duplicate_key_answered_from_ledger(self, rng):
        deployment = tiny_deployment(rng)
        [item] = make_items(rng, deployment, count=1)
        with WorkerGroup([ThreadWorker(name="only")],
                         deployments=[deployment]) as group:
            first = group.submit(item).result(timeout=60)
            dup = WorkItem(item_id=99, deployment=0,
                           images=rng.random((2,) + deployment.network
                                             .input_shape),
                           key=item.key)
            second = group.submit(dup).result(timeout=60)
            assert group.metrics.deduped == 1
            assert group.metrics.executed["only"] == 1
        np.testing.assert_array_equal(first.logits, second.logits)
        assert first.merged_trace() == second.merged_trace()

    def test_windowed_process_kill_requeues_whole_window(self, rng):
        """SIGKILL with W=2 chunks in flight: every windowed item —
        sent and unsent — requeues exactly-once and the merged answers
        stay bit-identical to a serial run."""
        deployment = tiny_deployment(rng)
        items = make_items(rng, deployment, count=8, images_each=2)
        baseline = serial_baseline(deployment, items)

        # Third dispatch draw kills: chunks 1 and 2 are pipelined
        # (window full) before the fault lands, so eviction must hand
        # a MULTI-chunk window to the requeue machinery.
        chaos = ChaosPolicy(kill={"doomed": 3})
        workers = [ProcessWorker(name="doomed"),
                   ThreadWorker(name="healthy")]
        with WorkerGroup(workers, deployments=[deployment],
                         chaos=chaos, heartbeat_s=30.0,
                         window=2, max_batch_items=2,
                         steal=False) as group:
            results = group.run(items, assignment=[0] * len(items))
            assert group.metrics.worker_crashes >= 1
            assert group.alive_workers() == ["healthy"]
            # The window genuinely pipelined before the kill: at least
            # one chunk was sent while another was still in flight.
            assert group.metrics.pipelined >= 2
            assert group.metrics.requeued >= 2
        assert len(results) == len(items)
        assert_bit_identical(baseline, results)
        assert any(e.action == "kill" for e in chaos.events)

    def test_windowed_remote_sever_requeues_whole_window(self, rng):
        """Severing the socket with W=3 in flight loses every
        outstanding chunk at once; all of them finish elsewhere with
        bit-identical merges and zero duplicate answers."""
        deployment = tiny_deployment(rng)
        items = make_items(rng, deployment, count=8, images_each=2)
        baseline = serial_baseline(deployment, items)

        server = WorkerServer().start()
        try:
            # The hello and the deployment push consume exchange draws
            # 1 and 2, so draw 5 is the THIRD chunk send — two chunks
            # already in flight when the wire goes away.
            chaos = ChaosPolicy(sever={"cut": 5})
            workers = [RemoteWorker("127.0.0.1", server.port,
                                    name="cut"),
                       ThreadWorker(name="local")]
            with WorkerGroup(workers, deployments=[deployment],
                             chaos=chaos, heartbeat_s=30.0,
                             window=3, max_batch_items=2,
                             steal=False) as group:
                results = group.run(items,
                                    assignment=[0] * len(items))
                assert group.metrics.worker_crashes >= 1
                assert group.metrics.pipelined >= 2
            assert len(results) == len(items)
            assert_bit_identical(baseline, results)
            assert any(e.action == "sever" for e in chaos.events)
        finally:
            server.close()

    def test_windowed_unsent_items_remain_stealable(self, rng):
        """Items queued behind a full window were never claimed by the
        windowed lane — an idle peer steals them like any backlog."""
        deployment = tiny_deployment(rng)
        items = make_items(rng, deployment, count=12, images_each=2)
        baseline = serial_baseline(deployment, items)

        workers = [ProcessWorker(name="piped"),
                   ThreadWorker(name="idle")]
        with WorkerGroup(workers, deployments=[deployment],
                         heartbeat_s=30.0, window=2,
                         max_batch_items=2) as group:
            results = group.run(items, assignment=[0] * len(items))
            assert group.metrics.stolen >= 1
        assert_bit_identical(baseline, results)

    def test_never_totals_the_group(self, rng):
        """Kill-everything chaos still answers: the last lane is spared
        (chaos degrades the group, never destroys it)."""
        deployment = tiny_deployment(rng)
        items = make_items(rng, deployment, count=4)
        baseline = serial_baseline(deployment, items)
        chaos = ChaosPolicy(seed=11, kill_prob=1.0)
        with WorkerGroup(create_workers(["thread", "thread"]),
                         deployments=[deployment], chaos=chaos,
                         heartbeat_s=30.0) as group:
            results = group.run(items)
            assert len(group.alive_workers()) >= 1
        assert_bit_identical(baseline, results)


class TestJoinBackoff:
    def test_backoff_grows_and_caps_with_jitter(self):
        delays = [_backoff_delay(0.1, streak, 2.0)
                  for streak in (1, 2, 3, 10, 50)]
        for streak, delay in zip((1, 2, 3), delays):
            nominal = 0.1 * (2 ** (streak - 1))
            assert nominal * 0.5 <= delay < nominal
        assert delays[3] <= 2.0 and delays[4] <= 2.0

    def test_join_stats_count_failed_dials(self):
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()  # nothing listens here
        stop = threading.Event()
        box = []
        thread = threading.Thread(
            target=lambda: box.append(join_fabric(
                "127.0.0.1", port, retry_s=0.01, stop_event=stop)))
        thread.start()
        time.sleep(0.3)
        stop.set()
        thread.join(timeout=10)
        [stats] = box
        assert stats.attempts >= 2
        assert stats.connects == 0
        assert stats.to_dict()["disconnects"] == 0


class TestServeUnderChaos:
    def test_frame_faults_exactly_once(self, rng):
        """Dup/drop/delay on the wire: every request answers once,
        predictions match a fault-free run, dups hit the ledger."""
        network = tiny_network(rng)
        images = rng.random((12,) + network.input_shape)

        async def main():
            async with InferenceServer(network, max_batch=4) as server:
                tcp, port = await start_tcp_server(server)
                clean = await server.submit_many(images)
                chaos = ChaosPolicy(seed=2, dup_frame_prob=0.4,
                                    drop_frame_prob=0.2,
                                    delay_frame_prob=0.2,
                                    delay_s=0.001)
                client = TcpClient("127.0.0.1", port, retries=6,
                                   chaos=chaos)
                async with client:
                    replies = []
                    for image in images:
                        replies.append(await client.infer(image))
                snapshot = server.snapshot()
                tcp.close()
                await tcp.wait_closed()
                return clean, replies, snapshot, chaos

        clean, replies, snapshot, chaos = asyncio.run(main())
        assert [r["prediction"] for r in replies] == \
            [r.prediction for r in clean]
        assert chaos.events, "seeded schedule injected nothing"
        dups = sum(1 for e in chaos.events if e.action == "dup")
        if dups:
            assert snapshot.deduped >= 1

    def test_server_hangups_recovered_by_reconnect(self, rng):
        network = tiny_network(rng)
        images = rng.random((10,) + network.input_shape)

        async def main():
            async with InferenceServer(network, max_batch=4) as server:
                direct = await server.submit_many(images)
                chaos = ChaosPolicy(seed=4, server_hangup_prob=0.35,
                                    max_faults=3)
                tcp, port = await start_tcp_server(server, chaos=chaos)
                client = TcpClient("127.0.0.1", port, retries=6,
                                   retry_base_s=0.01)
                async with client:
                    replies = []
                    for image in images:
                        replies.append(await client.infer(image))
                tcp.close()
                await tcp.wait_closed()
                return direct, replies, client.reconnects, chaos

        direct, replies, reconnects, chaos = asyncio.run(main())
        assert [r["prediction"] for r in replies] == \
            [r.prediction for r in direct]
        hangups = sum(1 for e in chaos.events if e.action == "hangup")
        assert hangups >= 1
        assert reconnects >= 1

    def test_duplicate_submit_while_inflight_shares_result(self, rng):
        network = tiny_network(rng)
        image = rng.random(network.input_shape)

        async def main():
            async with InferenceServer(network,
                                       max_wait_ms=20.0) as server:
                key = next_idempotency_key()
                first, second = await asyncio.gather(
                    server.submit(image, key=key),
                    server.submit(image, key=key))
                return first, second, server.snapshot()

        first, second, snapshot = asyncio.run(main())
        np.testing.assert_array_equal(first.logits, second.logits)
        assert snapshot.deduped >= 1
        assert snapshot.completed == 1

    def test_replicated_serving_bit_identical(self, rng):
        network = tiny_network(rng)
        images = rng.random((6,) + network.input_shape)

        async def main():
            async with InferenceServer(network, engines=2,
                                       replicas=2) as server:
                results = await server.submit_many(images)
                return results, server.snapshot()

        results, snapshot = asyncio.run(main())

        async def plain():
            async with InferenceServer(network) as server:
                return await server.submit_many(images)

        reference = asyncio.run(plain())
        assert [r.prediction for r in results] == \
            [r.prediction for r in reference]
        assert snapshot.replica_divergences == 0
        assert snapshot.completed == len(images)

    def test_replica_validation(self, rng):
        network = tiny_network(rng)
        with pytest.raises(Exception):
            InferenceServer(network, replicas=0)
        with pytest.raises(Exception):
            InferenceServer(network, replicas=2, quorum=3)


def _blue_green_registry(rng):
    """Two content-identical deployments (so any routing answers the
    same) plus a ``prod`` alias starting on blue."""
    network = tiny_network(rng)
    registry = DeploymentRegistry()
    registry.register("blue", network=network, backend="vectorized")
    registry.register("green", network=network, backend="vectorized")
    registry.alias("prod", "blue")
    return network, registry


class TestRollout:
    def test_alias_flip_is_atomic_and_one_hop(self, rng):
        _, registry = _blue_green_registry(rng)
        assert registry.alias_target("prod") == "blue"
        assert registry.resolve("prod").name == "blue"
        previous = registry.alias("prod", "green")
        assert previous == "blue"
        assert registry.resolve("prod").name == "green"
        with pytest.raises(RolloutError):
            registry.alias("blue", "green")   # name collision
        with pytest.raises(RolloutError):
            registry.alias("prod", "missing")

    def test_rollout_under_live_load_drops_nothing(self, rng):
        network, registry = _blue_green_registry(rng)
        images = rng.random((24,) + network.input_shape)

        async def main():
            async with InferenceServer(registry,
                                       max_wait_ms=1.0) as server:
                direct = await server.submit_many(images,
                                                  deployment="blue")
                tasks = []
                for i, image in enumerate(images):
                    tasks.append(asyncio.create_task(
                        server.submit(image, deployment="prod")))
                    if i == len(images) // 2:
                        outcome = await server.rollout("prod", "green")
                    await asyncio.sleep(0.002)
                results = await asyncio.gather(*tasks)
                return direct, results, outcome, server

        direct, results, outcome, server = asyncio.run(main())
        assert [r.prediction for r in results] == \
            [r.prediction for r in direct]
        assert outcome["alias"] == "prod"
        assert outcome["from"] == "blue" and outcome["to"] == "green"
        assert outcome["drained"] == "blue"   # the old lane, emptied
        assert server.registry.alias_target("prod") == "green"

    def test_rollout_refuses_non_serving_target(self, rng):
        network, registry = _blue_green_registry(rng)

        async def main():
            async with InferenceServer(registry) as server:
                with pytest.raises(RolloutError):
                    await server.rollout("prod", "missing")

        asyncio.run(main())

    def test_rollout_over_tcp(self, rng):
        network, registry = _blue_green_registry(rng)
        images = rng.random((4,) + network.input_shape)

        async def main():
            async with InferenceServer(registry) as server:
                tcp, port = await start_tcp_server(server)
                async with TcpClient("127.0.0.1", port) as client:
                    before = [await client.infer(image,
                                                 deployment="prod")
                              for image in images]
                    outcome = await client.rollout("prod", "green")
                    after = [await client.infer(image,
                                                deployment="prod")
                             for image in images]
                    with pytest.raises(RolloutError):
                        await client.rollout("prod", "missing")
                tcp.close()
                await tcp.wait_closed()
                return before, outcome, after

        before, outcome, after = asyncio.run(main())
        assert outcome["from"] == "blue" and outcome["to"] == "green"
        assert [r["prediction"] for r in before] == \
            [r["prediction"] for r in after]

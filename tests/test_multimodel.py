"""Multi-model serving and elastic fabric: the deployment registry PR.

The contracts pinned here:

* a :class:`DeploymentRegistry` names deployments, dedupes content-equal
  registrations onto one table slot, and raises typed
  :class:`DeploymentError` for unknown names/indices — locally, on every
  executor, and over the TCP wire;
* two deployments served concurrently from **one** ``WorkerGroup``-backed
  pool answer per-deployment predictions equal to a direct
  ``Accelerator.run_logits`` run, with per-deployment batching (batches
  never mix models), metrics and admission limits;
* the lane set is elastic: lanes join (``add_lane`` /
  ``repro worker --join`` via :class:`GroupListener`) and leave
  (``remove_lane``) a *running* group, an evicted lane is re-admitted
  after a probation probe, and any lane churn mid-run merges
  bit-identically to the serial single-process result;
* the trusted-fabric TCP protocol optionally requires a shared-secret
  token: unauthenticated payloads are rejected before any pickled blob
  is touched, and garbage/version-skewed frames answer structured errors
  without killing the connection;
* the load generator's arrival schedule is a pure function of
  ``(rate, arrival, seed)`` — identical offered-load traces across runs.
"""

import asyncio
import json
import os
import signal
import socket
import threading
import time
from types import SimpleNamespace

import numpy as np
import pytest

from repro.core import Accelerator, AcceleratorConfig
from repro.errors import (
    BackpressureError,
    ConfigurationError,
    DeploymentError,
    FabricAuthError,
    WorkerCrashError,
)
from repro.harness.sweep import SweepDriver, SweepTask
from repro.models import performance_network
from repro.runtime import (
    Deployment,
    DeploymentRegistry,
    GroupListener,
    ProcessWorker,
    RemoteWorker,
    ThreadWorker,
    WorkItem,
    WorkerGroup,
    WorkerServer,
    attach_token,
    check_token,
    create_workers,
    encode_line,
    join_fabric,
)
from repro.serve import InferenceServer, LoadGenerator, TcpClient, \
    start_tcp_server


def alpha_network(rng, num_steps=3):
    """A LeNet-flavoured tiny model: (1, 8, 8) in, 5 classes out."""
    return performance_network(
        [("conv", 4, 3, 1, 1), ("pool", 2), ("flatten",), ("linear", 5)],
        input_shape=(1, 8, 8), num_steps=num_steps,
        seed=int(rng.integers(1 << 16)))


def beta_network(rng, num_steps=4):
    """A Fang-flavoured tiny model: different shape, classes and T."""
    return performance_network(
        [("conv", 6, 3, 1, 1), ("pool", 2), ("flatten",), ("linear", 6)],
        input_shape=(1, 12, 12), num_steps=num_steps,
        seed=int(rng.integers(1 << 16)))


def deployment_for(network):
    return Deployment(network=network,
                      config=AcceleratorConfig.for_network(network))


def two_model_registry(rng):
    registry = DeploymentRegistry()
    registry.register("alpha", deployment_for(alpha_network(rng)))
    registry.register("beta", deployment_for(beta_network(rng)))
    return registry


def direct_predictions(network, images):
    """Ground truth the acceptance bar names: Accelerator.run_logits."""
    accelerator = Accelerator(AcceleratorConfig.for_network(network),
                              backend="vectorized")
    accelerator.deploy(SimpleNamespace(network=network))
    logits, _ = accelerator.run_logits(images)
    return logits.argmax(axis=1)


def make_task(rng, network, key, num_images=24):
    return SweepTask(key=key, network=network,
                     config=AcceleratorConfig.for_network(network),
                     images=rng.random((num_images,)
                                       + network.input_shape),
                     labels=rng.integers(
                         0, 5, size=num_images))


class TestDeploymentRegistry:
    def test_register_resolve_and_describe(self, rng):
        registry = two_model_registry(rng)
        assert registry.names() == ["alpha", "beta"]
        assert registry.resolve().name == "alpha"        # default = first
        assert registry.resolve("beta").index == 1
        assert registry.resolve(1).name == "beta"
        rows = registry.describe()
        assert [row["name"] for row in rows] == ["alpha", "beta"]
        assert all(row["fingerprint"] and row["backend"] == "vectorized"
                   for row in rows)
        assert rows[0]["input_shape"] == [1, 8, 8]
        assert rows[1]["input_shape"] == [1, 12, 12]

    def test_unknown_name_and_index_are_typed_errors(self, rng):
        registry = two_model_registry(rng)
        with pytest.raises(DeploymentError):
            registry.resolve("gamma")
        with pytest.raises(DeploymentError):
            registry.resolve(7)
        with pytest.raises(DeploymentError):
            DeploymentRegistry().resolve()

    def test_content_equal_names_alias_one_table_slot(self, rng):
        network = alpha_network(rng)
        registry = DeploymentRegistry()
        first = registry.register("one", deployment_for(network))
        second = registry.register("two", deployment_for(network))
        assert first.index == second.index
        assert len(registry) == 2                  # two names...
        assert len(registry.table()) == 1          # ...one deployment
        # Idempotent re-registration returns the existing entry.
        assert registry.register("one", deployment_for(network)) is first

    def test_same_name_different_content_rejected(self, rng):
        registry = DeploymentRegistry()
        registry.register("model", deployment_for(alpha_network(rng)))
        with pytest.raises(ConfigurationError):
            registry.register("model", deployment_for(beta_network(rng)))

    def test_register_from_parts_with_admission_limit(self, rng):
        network = alpha_network(rng)
        registry = DeploymentRegistry()
        entry = registry.register("limited", network=network, max_queue=3)
        assert entry.max_queue == 3
        assert entry.deployment.config == \
            AcceleratorConfig.for_network(network)


class TestMultiModelGroup:
    def test_two_deployments_one_group_bit_identical(self, rng):
        """Both models' items flow through one lane set; each result
        equals that model's own direct run."""
        registry = two_model_registry(rng)
        table = registry.table()
        images = {index: rng.random((3,) + dep.network.input_shape)
                  for index, dep in enumerate(table)}
        items = [WorkItem(item_id=i, deployment=i % 2,
                          images=images[i % 2]) for i in range(6)]
        with WorkerGroup(create_workers(["thread", "process"]),
                         deployments=registry) as group:
            results = group.run(items)
        for item, result in zip(items, results):
            expected = direct_predictions(
                table[item.deployment].network, item.images)
            np.testing.assert_array_equal(result.predictions, expected)

    def test_misrouted_item_raises_typed_error_locally(self, rng):
        deployment = deployment_for(alpha_network(rng))
        images = rng.random((2,) + deployment.network.input_shape)
        with WorkerGroup([ThreadWorker()],
                         deployments=[deployment]) as group:
            future = group.submit(WorkItem(item_id=0, deployment=5,
                                           images=images))
            with pytest.raises(DeploymentError):
                future.result(timeout=30)
            # The lane survives the misroute.
            ok = group.submit(WorkItem(item_id=1, deployment=0,
                                       images=images))
            assert ok.result(timeout=30).logits.shape[0] == 2
            assert group.metrics.worker_crashes == 0

    def test_misrouted_item_raises_typed_error_over_tcp(self, rng):
        deployment = deployment_for(alpha_network(rng))
        images = rng.random((2,) + deployment.network.input_shape)
        with WorkerServer() as server:
            worker = RemoteWorker("127.0.0.1", server.port)
            worker.start()
            try:
                worker.deploy([deployment])
                with pytest.raises(DeploymentError):
                    worker.execute(WorkItem(item_id=0, deployment=3,
                                            images=images))
                # Typed task error, healthy lane: valid work still runs.
                result = worker.execute(WorkItem(item_id=1, deployment=0,
                                                 images=images))
                assert result.logits.shape[0] == 2
            finally:
                worker.close()


def serve_two_models(rng, registry, count_a=10, count_b=6,
                     **server_kwargs):
    """Serve both deployments concurrently from one pool."""
    net_a = registry.resolve("alpha").deployment.network
    net_b = registry.resolve("beta").deployment.network
    images_a = rng.random((count_a,) + net_a.input_shape)
    images_b = rng.random((count_b,) + net_b.input_shape)
    server_kwargs.setdefault("max_batch", 4)
    server_kwargs.setdefault("max_wait_ms", 10.0)
    server = InferenceServer(registry, **server_kwargs)

    async def main():
        async with server:
            results_a, results_b = await asyncio.gather(
                server.submit_many(images_a, deployment="alpha"),
                server.submit_many(images_b, deployment="beta"))
            return (results_a, results_b, server.snapshot(),
                    server.snapshot("alpha"), server.snapshot("beta"))

    results_a, results_b, snapshot, snap_a, snap_b = asyncio.run(main())
    return (images_a, images_b, results_a, results_b,
            snapshot, snap_a, snap_b)


class TestMultiModelServing:
    def test_concurrent_deployments_match_accelerator_run_logits(
            self, rng):
        """The PR's acceptance bar: two models on one WorkerGroup-backed
        pool, each runtime-equal to its direct Accelerator run."""
        registry = two_model_registry(rng)
        (images_a, images_b, results_a, results_b,
         snapshot, snap_a, snap_b) = serve_two_models(
            rng, registry, engines=2)

        net_a = registry.resolve("alpha").deployment.network
        net_b = registry.resolve("beta").deployment.network
        np.testing.assert_array_equal(
            [r.prediction for r in results_a],
            direct_predictions(net_a, images_a))
        np.testing.assert_array_equal(
            [r.prediction for r in results_b],
            direct_predictions(net_b, images_b))

        # Batches never mix models, and every result is labelled.
        assert all(r.deployment == "alpha" for r in results_a)
        assert all(r.deployment == "beta" for r in results_b)

        # Per-deployment metrics split the aggregate exactly.
        assert snap_a.completed == len(results_a)
        assert snap_b.completed == len(results_b)
        assert snapshot.completed == len(results_a) + len(results_b)
        assert set(snapshot.per_deployment) == {"alpha", "beta"}
        assert (snapshot.per_deployment["alpha"]["completed"]
                == len(results_a))

    def test_per_request_trace_slices_per_model(self, rng):
        """Hardware accounting stays per-deployment under coalescing."""
        registry = two_model_registry(rng)
        _, _, results_a, results_b, *_ = serve_two_models(rng, registry)
        # Cycle costs differ between the two models (different shapes);
        # every request of one deployment reports its own model's cost.
        cycles_a = {r.cycles for r in results_a}
        cycles_b = {r.cycles for r in results_b}
        assert len(cycles_a) == 1 and len(cycles_b) == 1
        assert cycles_a != cycles_b

    def test_registration_after_start_is_typed_error(self, rng):
        """The registry is public and growable; a name it resolves but
        the running server has no lane for must answer typed, not leak
        a KeyError past the TCP handler."""
        registry = DeploymentRegistry()
        registry.register("alpha", deployment_for(alpha_network(rng)))
        server = InferenceServer(registry)
        late_net = beta_network(rng)

        async def main():
            async with server:
                registry.register("late", deployment_for(late_net))
                with pytest.raises(DeploymentError):
                    await server.submit(np.zeros(late_net.input_shape),
                                        deployment="late")

        asyncio.run(main())

    def test_elastic_serving_capacity_grows_and_shrinks(self, rng):
        """add_engine_lane admits a lane AND grows the dispatch budget;
        remove_engine_lane drains both back down."""
        registry = two_model_registry(rng)
        net_a = registry.resolve("alpha").deployment.network
        images = rng.random((8,) + net_a.input_shape)
        server = InferenceServer(registry, max_batch=2, engines=1)

        async def main():
            async with server:
                name = await server.add_engine_lane("thread")
                assert server.pool.size == 2
                assert server.pool.group.metrics.lanes_added == 1
                results = await server.submit_many(images,
                                                   deployment="alpha")
                await server.remove_engine_lane(name)
                assert server.pool.size == 1
                more = await server.submit_many(images[:4],
                                                deployment="alpha")
                return results, more

        results, more = asyncio.run(main())
        expected = direct_predictions(net_a, images)
        np.testing.assert_array_equal([r.prediction for r in results],
                                      expected)
        np.testing.assert_array_equal([r.prediction for r in more],
                                      expected[:4])

    def test_expired_lane_releases_its_dispatch_slot(self, rng):
        """A deployment whose only waiting request expired must hand
        its dispatch slot back, not park on an empty queue holding it —
        that would starve every other deployment of the shared pool."""
        from repro.errors import RequestTimeoutError
        from repro.serve import EnginePool

        class GatedPool(EnginePool):
            async def run_batch(self, images, **kwargs):
                await self.gate.wait()
                return await super().run_batch(images, **kwargs)

        registry = two_model_registry(rng)
        net_a = registry.resolve("alpha").deployment.network
        net_b = registry.resolve("beta").deployment.network
        image_a = rng.random(net_a.input_shape)
        image_b = rng.random(net_b.input_shape)
        server = InferenceServer(registry, max_batch=1, max_wait_ms=0.0,
                                 engines=1)
        server.pool = GatedPool(registry=registry, size=1)

        async def main():
            async with server:
                server.pool.gate = asyncio.Event()
                # A beta batch occupies the pool's only slot at the gate.
                stuck = asyncio.create_task(
                    server.submit(image_b, deployment="beta"))
                await asyncio.sleep(0.05)
                # An alpha request expires while waiting for that slot.
                doomed = asyncio.create_task(
                    server.submit(image_a, deployment="alpha",
                                  timeout_ms=30))
                await asyncio.sleep(0.1)   # let the deadline pass
                server.pool.gate.set()
                with pytest.raises(RequestTimeoutError):
                    await doomed
                await stuck
                # Beta traffic must still be served: the alpha loop,
                # finding only expired work, released the slot.
                result = await asyncio.wait_for(
                    server.submit(image_b, deployment="beta"), timeout=10)
                assert result.deployment == "beta"

        asyncio.run(main())

    def test_unknown_deployment_is_typed_error(self, rng):
        registry = two_model_registry(rng)
        net_a = registry.resolve("alpha").deployment.network
        server = InferenceServer(registry)

        async def main():
            async with server:
                with pytest.raises(DeploymentError):
                    await server.submit(
                        np.zeros(net_a.input_shape), deployment="gamma")

        asyncio.run(main())

    def test_shape_validated_against_target_deployment(self, rng):
        """An alpha-shaped image must be rejected by beta, not run."""
        from repro.errors import ShapeError

        registry = two_model_registry(rng)
        net_a = registry.resolve("alpha").deployment.network
        server = InferenceServer(registry)

        async def main():
            async with server:
                with pytest.raises(ShapeError):
                    await server.submit(np.zeros(net_a.input_shape),
                                        deployment="beta")

        asyncio.run(main())

    def test_per_deployment_admission_limit(self, rng):
        """A registry entry's max_queue caps that model's queue only."""
        network = alpha_network(rng)
        registry = DeploymentRegistry()
        registry.register("tight", deployment_for(network), max_queue=2)
        registry.register("roomy", deployment_for(beta_network(rng)))
        server = InferenceServer(registry, max_batch=1, queue_depth=64)
        images = rng.random((12,) + network.input_shape)

        async def main():
            async with server:
                tasks = [asyncio.create_task(
                    server.submit(image, wait=False, deployment="tight"))
                    for image in images]
                settled = await asyncio.gather(*tasks,
                                               return_exceptions=True)
                return settled, server.snapshot("tight").rejected

        settled, rejected = asyncio.run(main())
        bounced = [s for s in settled
                   if isinstance(s, BackpressureError)]
        assert bounced and rejected == len(bounced)

    def test_multimodel_over_tcp(self, rng):
        """deployment field, registry op and typed errors on the wire."""
        registry = two_model_registry(rng)
        net_b = registry.resolve("beta").deployment.network
        image_b = rng.random(net_b.input_shape)
        server = InferenceServer(registry, max_batch=4)

        async def main():
            async with server:
                tcp, port = await start_tcp_server(server)
                try:
                    async with TcpClient(port=port) as client:
                        rows = await client.deployments()
                        reply = await client.infer(image_b,
                                                   deployment="beta")
                        with pytest.raises(DeploymentError):
                            await client.infer(image_b,
                                               deployment="gamma")
                        metrics = await client.metrics(deployment="beta")
                        aggregate = await client.metrics()
                        return rows, reply, metrics, aggregate
                finally:
                    tcp.close()
                    await tcp.wait_closed()

        rows, reply, metrics, aggregate = asyncio.run(main())
        assert [row["name"] for row in rows] == ["alpha", "beta"]
        assert reply["deployment"] == "beta"
        assert reply["prediction"] == int(
            direct_predictions(net_b, image_b[None])[0])
        assert metrics["completed"] == 1
        assert aggregate["per_deployment"]["beta"]["completed"] == 1


class TestElasticFabric:
    def _items(self, rng, deployment, count):
        shape = deployment.network.input_shape
        return [WorkItem(item_id=i, deployment=0,
                         images=rng.random((3,) + shape))
                for i in range(count)]

    def test_add_lane_mid_run_bit_identical(self, rng):
        deployment = deployment_for(alpha_network(rng))
        items = self._items(rng, deployment, 8)
        with WorkerGroup([ThreadWorker()],
                         deployments=[deployment]) as baseline_group:
            baseline = baseline_group.run(items)
        with WorkerGroup([ThreadWorker(name="first")],
                         deployments=[deployment]) as group:
            futures = [group.submit(item) for item in items[:4]]
            name = group.add_lane("thread")
            futures += [group.submit(item) for item in items[4:]]
            results = [f.result(timeout=60) for f in futures]
            assert group.metrics.lanes_added == 1
            assert name in group.alive_workers()
        for base, other in zip(baseline, results):
            np.testing.assert_array_equal(base.logits, other.logits)
            assert base.merged_trace() == other.merged_trace()

    def test_remove_lane_drains_and_last_lane_is_protected(self, rng):
        deployment = deployment_for(alpha_network(rng))
        workers = [ThreadWorker(name="stays"), ThreadWorker(name="goes")]
        with WorkerGroup(workers, deployments=[deployment]) as group:
            group.run(self._items(rng, deployment, 2))
            group.remove_lane("goes")
            assert group.alive_workers() == ["stays"]
            assert group.metrics.lanes_removed == 1
            results = group.run(self._items(rng, deployment, 4))
            assert all(r.worker == "stays" for r in results)
            with pytest.raises(ConfigurationError):
                group.remove_lane("stays")
            with pytest.raises(ConfigurationError):
                group.remove_lane("never-existed")

    def test_evicted_lane_readmitted_after_probation(self, rng):
        """A killed process lane comes back by itself: evict -> probe ->
        readmit -> executes again."""
        deployment = deployment_for(alpha_network(rng))
        workers = [ProcessWorker(name="phoenix"),
                   ThreadWorker(name="anchor")]
        with WorkerGroup(workers, deployments=[deployment],
                         heartbeat_s=0.1, probation_s=0.2) as group:
            group.run(self._items(rng, deployment, 2))
            os.kill(workers[0].pid, signal.SIGKILL)
            deadline = time.time() + 60
            while (group.metrics.readmitted < 1
                   and time.time() < deadline):
                time.sleep(0.05)
            assert group.metrics.readmitted >= 1
            assert group.metrics.worker_crashes >= 1
            assert "phoenix" in group.alive_workers()
            results = group.run(self._items(rng, deployment, 4))
            assert len(results) == 4

    def test_removed_lane_is_never_readmitted(self, rng):
        """remove_lane beats probation: an evicted-then-removed lane
        stays out even with fast probes running."""
        deployment = deployment_for(alpha_network(rng))
        workers = [ProcessWorker(name="gone"),
                   ThreadWorker(name="anchor")]
        with WorkerGroup(workers, deployments=[deployment],
                         heartbeat_s=0.05, probation_s=10.0) as group:
            os.kill(workers[0].pid, signal.SIGKILL)
            deadline = time.time() + 60
            while ("gone" in group.alive_workers()
                   and time.time() < deadline):
                time.sleep(0.05)
            group.remove_lane("gone")       # decommission while dead
            # remove_lane popped the probation timer, so without the
            # removed-filter the monitor would probe (and readmit) the
            # lane on its very next 0.05 s tick.  It must not.
            time.sleep(0.5)
            assert group.alive_workers() == ["anchor"]
            assert group.metrics.readmitted == 0

    def test_readmit_disabled_keeps_lane_dead(self, rng):
        deployment = deployment_for(alpha_network(rng))
        workers = [ProcessWorker(name="doomed"),
                   ThreadWorker(name="anchor")]
        with WorkerGroup(workers, deployments=[deployment],
                         heartbeat_s=0.1, readmit=False) as group:
            os.kill(workers[0].pid, signal.SIGKILL)
            deadline = time.time() + 60
            while ("doomed" in group.alive_workers()
                   and time.time() < deadline):
                time.sleep(0.05)
            time.sleep(0.5)  # several probation periods' worth
            assert group.alive_workers() == ["anchor"]
            assert group.metrics.readmitted == 0

    def test_join_fabric_enters_live_group(self, rng):
        """repro worker --join: an outbound connection becomes a lane."""
        deployment = deployment_for(alpha_network(rng))
        items = self._items(rng, deployment, 6)
        with WorkerGroup([ThreadWorker()],
                         deployments=[deployment]) as baseline_group:
            baseline = baseline_group.run(items)
        group = WorkerGroup([ThreadWorker(name="local")],
                            deployments=[deployment]).start()
        listener = GroupListener(group, "127.0.0.1", 0).start()
        joiner = threading.Thread(
            target=join_fabric,
            args=("127.0.0.1", listener.port),
            kwargs={"name": "visitor"}, daemon=True)
        joiner.start()
        try:
            deadline = time.time() + 30
            while (group.metrics.lanes_added < 1
                   and time.time() < deadline):
                time.sleep(0.02)
            assert group.metrics.lanes_added == 1
            assert "visitor" in group.alive_workers()
            results = group.run(items)
            for base, other in zip(baseline, results):
                np.testing.assert_array_equal(base.logits, other.logits)
                assert base.merged_trace() == other.merged_trace()
        finally:
            listener.close()
            group.stop()
        joiner.join(timeout=10)
        assert not joiner.is_alive()

    def test_heterogeneous_sweep_with_mid_run_join_is_bit_exact(
            self, rng):
        """The PR's acceptance bar: a two-model sweep on a shared
        external group, with a lane joining mid-run, merges identically
        to the serial single-process result."""
        task_a = make_task(rng, alpha_network(rng), "alpha_cell", 30)
        task_b = make_task(rng, beta_network(rng), "beta_cell", 30)
        serial = SweepDriver(workers=1, shard_size=30).run(
            [task_a, task_b])

        group = WorkerGroup([ThreadWorker(name="resident")]).start()
        listener = GroupListener(group, "127.0.0.1", 0).start()
        launched = []

        def progress(tick):
            # After the first completed unit, bring a joiner in and
            # block this dispatcher until it has actually joined — the
            # join provably lands mid-run, and the joined lane steals
            # the remaining shards meanwhile.
            if not launched:
                launched.append(threading.Thread(
                    target=join_fabric,
                    args=("127.0.0.1", listener.port),
                    kwargs={"name": "midrun"}, daemon=True))
                launched[0].start()
                deadline = time.time() + 30
                while (group.metrics.lanes_added < 1
                       and time.time() < deadline):
                    time.sleep(0.01)

        driver = SweepDriver(shard_size=3, progress=progress)
        try:
            outcomes = driver.run([task_a, task_b], group=group)
        finally:
            listener.close()
            group.stop()
        launched[0].join(timeout=10)

        assert group.metrics.lanes_added == 1
        assert driver.last_summary.lanes_joined == 1
        assert driver.last_summary.num_deployments == 2
        for key in ("alpha_cell", "beta_cell"):
            np.testing.assert_array_equal(outcomes[key].predictions,
                                          serial[key].predictions)
            assert outcomes[key].trace == serial[key].trace
            assert outcomes[key].correct == serial[key].correct

    def test_sweep_accept_opens_listener_for_joiners(self, rng):
        """The driver-owned path `repro sweep --accept` rides on."""
        task = make_task(rng, alpha_network(rng), "cell", 24)
        serial = SweepDriver(workers=1, shard_size=24).run(
            [task])[task.key]
        joiners = []

        driver = SweepDriver(workers=["thread"], shard_size=2,
                             accept=("127.0.0.1", 0))

        def progress(tick):
            if not joiners:
                joiners.append(threading.Thread(
                    target=join_fabric,
                    args=("127.0.0.1", driver.listener.port),
                    daemon=True))
                joiners[0].start()

        driver.progress = progress
        outcome = driver.run([task])[task.key]
        np.testing.assert_array_equal(outcome.predictions,
                                      serial.predictions)
        assert outcome.trace == serial.trace
        assert driver.listener is None  # closed after the run
        joiners[0].join(timeout=10)

    def test_sweep_dedupes_content_equal_deployments(self, rng):
        network = alpha_network(rng)
        task_a = make_task(rng, network, "first_half", 10)
        task_b = make_task(rng, network, "second_half", 10)
        driver = SweepDriver(workers=1, shard_size=5)
        driver.run([task_a, task_b])
        assert driver.last_summary.num_deployments == 1

    def test_external_group_must_be_started(self, rng):
        task = make_task(rng, alpha_network(rng), "cell", 6)
        group = WorkerGroup([ThreadWorker()])
        with pytest.raises(ConfigurationError):
            SweepDriver(shard_size=3).run([task], group=group)


class TestSweepStreaming:
    def test_one_record_per_shard_with_running_top1(self, rng):
        task = make_task(rng, alpha_network(rng), "cell", 22)
        records = []
        driver = SweepDriver(workers=1, shard_size=5,
                             stream=records.append)
        outcome = driver.run([task])[task.key]
        assert len(records) == outcome.num_shards == 5  # ceil(22 / 5)
        assert sum(r["correct"] for r in records) == outcome.correct
        assert sum(r["images"] for r in records) == 22
        assert records[-1]["top1_so_far"] == outcome.accuracy
        assert records[-1]["done_units"] == records[-1]["total_units"]
        for record in records:
            for field in ("task_key", "deployment", "backend", "start",
                          "stop", "cycles", "worker", "wall_s"):
                assert field in record
            json.dumps(record)  # JSON-ready by contract

    def test_stream_covers_every_task_of_a_multi_model_sweep(self, rng):
        task_a = make_task(rng, alpha_network(rng), "a", 8)
        task_b = make_task(rng, beta_network(rng), "b", 8)
        records = []
        SweepDriver(workers=1, shard_size=4,
                    stream=records.append).run([task_a, task_b])
        assert {r["task_key"] for r in records} == {"a", "b"}
        fingerprints = {r["task_key"]: r["deployment"] for r in records}
        assert fingerprints["a"] != fingerprints["b"]


class TestFabricToken:
    def test_codec_token_checks(self):
        payload = {"op": "ping"}
        assert check_token(payload, None)
        signed = attach_token(payload, "s3cret")
        assert signed is not payload and check_token(signed, "s3cret")
        assert not check_token(payload, "s3cret")          # missing
        assert not check_token(attach_token(payload, "wrong"), "s3cret")
        assert not check_token(dict(payload, auth=42), "s3cret")

    def test_tokenless_lane_rejected_by_token_server(self, rng):
        deployment = deployment_for(alpha_network(rng))
        with WorkerServer(token="s3cret") as server:
            worker = RemoteWorker("127.0.0.1", server.port)
            worker.start()
            try:
                with pytest.raises(WorkerCrashError):
                    worker.deploy([deployment])
            finally:
                worker.close()
            # The right token sails through, bit-identically.
            good = RemoteWorker("127.0.0.1", server.port, token="s3cret")
            good.start()
            try:
                good.deploy([deployment])
                images = rng.random((2,) + deployment.network.input_shape)
                result = good.execute(WorkItem(item_id=0, deployment=0,
                                               images=images))
                np.testing.assert_array_equal(
                    result.predictions,
                    direct_predictions(deployment.network, images))
            finally:
                good.close()

    def test_group_degrades_on_auth_failure(self, rng):
        """A bad-token lane dies at start; the group keeps serving."""
        deployment = deployment_for(alpha_network(rng))
        with WorkerServer(token="s3cret") as server:
            workers = [
                RemoteWorker("127.0.0.1", server.port, name="badtoken",
                             token="nope"),
                ThreadWorker(name="local"),
            ]
            with WorkerGroup(workers, deployments=[deployment],
                             heartbeat_s=30.0) as group:
                results = group.run(self._items(rng, deployment))
                assert group.metrics.worker_crashes == 1
                assert all(r.worker == "local" for r in results)

    def _items(self, rng, deployment, count=3):
        shape = deployment.network.input_shape
        return [WorkItem(item_id=i, deployment=0,
                         images=rng.random((2,) + shape))
                for i in range(count)]

    def test_join_with_wrong_token_is_refused(self, rng):
        group = WorkerGroup([ThreadWorker()],
                            deployments=[deployment_for(
                                alpha_network(rng))]).start()
        listener = GroupListener(group, "127.0.0.1", 0,
                                 token="s3cret").start()
        try:
            with pytest.raises(FabricAuthError):
                join_fabric("127.0.0.1", listener.port, token="wrong")
            with pytest.raises(FabricAuthError):
                join_fabric("127.0.0.1", listener.port)  # no token
            assert group.metrics.lanes_added == 0
            # The right token joins.
            joiner = threading.Thread(
                target=join_fabric,
                args=("127.0.0.1", listener.port),
                kwargs={"token": "s3cret", "name": "trusted"},
                daemon=True)
            joiner.start()
            deadline = time.time() + 30
            while (group.metrics.lanes_added < 1
                   and time.time() < deadline):
                time.sleep(0.02)
            assert "trusted" in group.alive_workers()
        finally:
            listener.close()
            group.stop()


class TestCodecEdgeCases:
    def test_garbage_and_skewed_frames_answer_structured_errors(
            self, rng):
        """A live WorkerServer survives hostile frames, answering each."""
        deployment = deployment_for(alpha_network(rng))
        with WorkerServer() as server:
            sock = socket.create_connection(("127.0.0.1", server.port),
                                            timeout=10)
            try:
                reader = sock.makefile("rb")
                # Garbage bytes: structured JSON error, not a hangup.
                sock.sendall(b"this is not json\n")
                reply = json.loads(reader.readline())
                assert reply["ok"] is False
                assert reply["error"]["type"] and reply["error"]["message"]
                # Version-skewed frame (deploy without its blob field).
                sock.sendall(encode_line({"op": "deploy"}))
                reply = json.loads(reader.readline())
                assert reply["ok"] is False
                # Non-object JSON.
                sock.sendall(b"[1, 2, 3]\n")
                reply = json.loads(reader.readline())
                assert reply["ok"] is False
                # Unknown op.
                sock.sendall(encode_line({"op": "teleport"}))
                reply = json.loads(reader.readline())
                assert reply["ok"] is False
                # The connection still serves real work afterwards.
                sock.sendall(encode_line({"op": "ping"}))
                assert json.loads(reader.readline())["ok"] is True
            finally:
                sock.close()
        # And a real lane on the same protocol still round-trips.
        with WorkerServer() as server:
            worker = RemoteWorker("127.0.0.1", server.port)
            worker.start()
            try:
                worker.deploy([deployment])
                assert worker.ping()
            finally:
                worker.close()

    def test_structured_error_payload_roundtrip(self, rng):
        """Error replies carry type+message and resurrect typed."""
        with WorkerServer() as server:
            sock = socket.create_connection(("127.0.0.1", server.port),
                                            timeout=10)
            try:
                reader = sock.makefile("rb")
                sock.sendall(encode_line(
                    {"op": "execute", "item_id": 1, "deployment": 0,
                     "images": {"dtype": "float64", "shape": [0],
                                "data": ""}}))
                reply = json.loads(reader.readline())
                assert reply["ok"] is False
                assert reply["error"]["type"] == "DeploymentError"
                assert "deploy" in reply["error"]["message"]
            finally:
                sock.close()


class TestLoadGeneratorDeterminism:
    async def _noop_submit(self, image, deployment=None):
        return deployment

    def test_poisson_schedule_reproducible_by_seed(self):
        make = lambda seed: LoadGenerator(  # noqa: E731
            self._noop_submit, 200.0, arrival="poisson", seed=seed)
        first = make(7).arrival_offsets(64)
        again = make(7).arrival_offsets(64)
        other = make(8).arrival_offsets(64)
        np.testing.assert_array_equal(first, again)
        assert not np.array_equal(first, other)
        assert first[0] == 0.0 and np.all(np.diff(first) >= 0)

    def test_even_schedule_is_fixed_spacing(self):
        generator = LoadGenerator(self._noop_submit, 100.0)
        np.testing.assert_allclose(generator.arrival_offsets(5),
                                   np.arange(5) * 0.01)

    def test_bad_arrival_rejected(self):
        with pytest.raises(ConfigurationError):
            LoadGenerator(self._noop_submit, 100.0, arrival="bursty")

    def test_deployment_forwarded_and_report_records_trace_params(self):
        generator = LoadGenerator(self._noop_submit, 5000.0,
                                  arrival="poisson", seed=3,
                                  deployment="beta")
        report = asyncio.run(generator.run(np.zeros((4, 1, 2, 2))))
        assert report.results == ["beta"] * 4
        assert report.to_dict()["seed"] == 3
        assert report.to_dict()["arrival"] == "poisson"
        assert report.to_dict()["deployment"] == "beta"

    def test_seeded_poisson_load_serves_end_to_end(self, rng):
        network = alpha_network(rng)
        images = rng.random((8,) + network.input_shape)
        server = InferenceServer(network, max_batch=4)

        async def main():
            async with server:
                return await LoadGenerator(
                    server.submit, rate_rps=2000.0,
                    arrival="poisson", seed=11).run(images)

        report = asyncio.run(main())
        assert report.failed == 0
        np.testing.assert_array_equal(
            [r.prediction for r in report.results],
            direct_predictions(network, images))

"""Cross-configuration invariance properties of the hardware model.

The paper states that "the classification result is unaffected by the
number of convolution units as the operations are identical" — and, more
broadly, none of the deployment knobs (unit count, clock, unit width,
memory option) may change *what* is computed, only how fast.  These tests
pin that down on randomized networks.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Accelerator, AcceleratorConfig
from repro.core.config import (
    ConvUnitConfig,
    LinearUnitConfig,
    MemoryConfig,
    PoolUnitConfig,
)
from repro.models import performance_network
from repro.snn import SNNModel


def random_network(seed, num_steps=3):
    return performance_network(
        [("conv", 5, 3, 1, 1), ("pool", 2), ("conv", 7, 3, 1, 0),
         ("flatten",), ("linear", 11), ("linear", 4)],
        input_shape=(1, 10, 10), num_steps=num_steps, seed=seed)


def run_on(net, config, image):
    accelerator = Accelerator(config)
    accelerator.deploy(SNNModel(net))
    logits, trace = accelerator.run_image(image)
    return logits, trace


class TestResultInvariance:
    @given(st.integers(min_value=0, max_value=30))
    @settings(max_examples=6, deadline=None)
    def test_unit_count_does_not_change_results(self, seed):
        """Table II's premise, verified functionally."""
        net = random_network(seed)
        image = np.random.default_rng(seed + 1).random(net.input_shape)
        base = AcceleratorConfig.for_network(net, num_conv_units=1)
        logits1, trace1 = run_on(net, base, image)
        logits4, trace4 = run_on(net, base.with_units(4), image)
        np.testing.assert_array_equal(logits1, logits4)
        assert trace4.total_cycles < trace1.total_cycles

    def test_unit_width_does_not_change_results(self):
        """Wider adder arrays change packing/latency, never values."""
        net = random_network(3)
        image = np.random.default_rng(0).random(net.input_shape)
        narrow = AcceleratorConfig(
            conv_unit=ConvUnitConfig(columns=10, rows=3),
            pool_unit=PoolUnitConfig(columns=5, rows=2))
        wide = AcceleratorConfig(
            conv_unit=ConvUnitConfig(columns=40, rows=3),
            pool_unit=PoolUnitConfig(columns=8, rows=2))
        logits_n, _ = run_on(net, narrow, image)
        logits_w, _ = run_on(net, wide, image)
        np.testing.assert_array_equal(logits_n, logits_w)

    def test_memory_option_does_not_change_results(self):
        """On-chip vs DRAM weights: identical outputs, extra cycles."""
        net = random_network(5)
        image = np.random.default_rng(2).random(net.input_shape)
        base = AcceleratorConfig.for_network(net)
        streamed = AcceleratorConfig(
            num_conv_units=base.num_conv_units,
            conv_unit=base.conv_unit, pool_unit=base.pool_unit,
            memory=MemoryConfig(onchip_weight_capacity=1))
        logits_a, trace_a = run_on(net, base, image)
        logits_b, trace_b = run_on(net, streamed, image)
        np.testing.assert_array_equal(logits_a, logits_b)
        assert trace_b.total_cycles > trace_a.total_cycles

    def test_linear_parallelism_does_not_change_results(self):
        net = random_network(7)
        image = np.random.default_rng(3).random(net.input_shape)
        base = AcceleratorConfig.for_network(net)
        narrow_fc = AcceleratorConfig(
            num_conv_units=base.num_conv_units,
            conv_unit=base.conv_unit, pool_unit=base.pool_unit,
            linear_unit=LinearUnitConfig(parallel_outputs=2))
        logits_a, trace_a = run_on(net, base, image)
        logits_b, trace_b = run_on(net, narrow_fc, image)
        np.testing.assert_array_equal(logits_a, logits_b)
        assert trace_b.total_cycles > trace_a.total_cycles

    def test_clock_changes_time_not_cycles(self):
        net = random_network(9)
        slow = AcceleratorConfig.for_network(net, clock_mhz=100.0)
        fast = AcceleratorConfig.for_network(net, clock_mhz=200.0)
        image = np.random.default_rng(4).random(net.input_shape)
        _, trace_slow = run_on(net, slow, image)
        _, trace_fast = run_on(net, fast, image)
        assert trace_slow.total_cycles == trace_fast.total_cycles


class TestTrafficInvariance:
    def test_activation_reads_independent_of_unit_count(self):
        """More units do the same total work; per-unit traffic merges to
        (approximately) a unit-count-independent total for conv layers
        processed round-robin over identical channel groups."""
        net = random_network(11)
        image = np.random.default_rng(5).random(net.input_shape)
        base = AcceleratorConfig.for_network(net, num_conv_units=1)
        _, trace1 = run_on(net, base, image)
        _, trace2 = run_on(net, base.with_units(2), image)
        t1 = trace1.total_traffic()
        t2 = trace2.total_traffic()
        assert t1.activation_read_bits == t2.activation_read_bits
        assert t1.kernel_read_values == t2.kernel_read_values

    def test_adder_ops_independent_of_unit_count(self):
        net = random_network(13)
        image = np.random.default_rng(6).random(net.input_shape)
        base = AcceleratorConfig.for_network(net, num_conv_units=1)
        _, trace1 = run_on(net, base, image)
        _, trace3 = run_on(net, base.with_units(3), image)
        assert trace1.total_adder_ops == trace3.total_adder_ops

"""Tests for ANN-to-SNN conversion and the central exactness invariant:

    quantized-ANN reference == temporal radix spike simulation

for every layer type, network shape and spike-train length.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConversionError
from repro.nn import (
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    Dropout,
    Flatten,
    Linear,
    MaxPool2d,
    ReLU,
    Sequential,
)
from repro.snn import (
    RadixIFNeuron,
    ann_to_snn,
    fold_batch_norm,
    group_layers,
    requantize,
)
from repro.snn.spec import QuantPoolSpec


def tiny_cnn(seed=0, in_size=12):
    rng = np.random.default_rng(seed)
    return Sequential([
        Conv2d(1, 4, kernel_size=3, rng=rng), ReLU(),
        AvgPool2d(2),
        Conv2d(4, 6, kernel_size=3, rng=rng), ReLU(),
        Flatten(),
        Linear(6 * 3 * 3, 12, rng=rng), ReLU(),
        Linear(12, 5, rng=rng),
    ])


def random_images(n, shape, seed=0):
    return np.random.default_rng(seed).random((n,) + shape)


class TestGroupLayers:
    def test_groups_tiny_cnn(self):
        kinds = [g[0] for g in group_layers(tiny_cnn())]
        assert kinds == ["conv", "pool", "conv", "flatten", "linear",
                         "linear"]

    def test_dropout_is_skipped(self):
        model = Sequential([Linear(4, 4), ReLU(), Dropout(0.3),
                            Linear(4, 2)])
        kinds = [g[0] for g in group_layers(model)]
        assert kinds == ["linear", "linear"]

    def test_conv_without_relu_rejected(self):
        model = Sequential([Conv2d(1, 2, 3), Flatten(), Linear(8, 2)])
        with pytest.raises(ConversionError):
            group_layers(model)

    def test_max_pool_rejected(self):
        model = Sequential([Conv2d(1, 2, 3), ReLU(), MaxPool2d(2),
                            Flatten(), Linear(2, 2)])
        with pytest.raises(ConversionError):
            group_layers(model)

    def test_relu_head_rejected(self):
        model = Sequential([Linear(4, 2), ReLU()])
        with pytest.raises(ConversionError):
            group_layers(model)

    def test_unfolded_batchnorm_rejected(self):
        model = Sequential([Conv2d(1, 2, 3), BatchNorm2d(2), ReLU(),
                            Flatten(), Linear(8, 2)])
        with pytest.raises(ConversionError):
            group_layers(model)


class TestFoldBatchNorm:
    def test_folded_model_matches_eval_output(self):
        rng = np.random.default_rng(0)
        model = Sequential([
            Conv2d(2, 3, kernel_size=3, rng=rng), BatchNorm2d(3), ReLU(),
            Flatten(), Linear(3 * 4 * 4, 2, rng=rng)])
        x = rng.normal(size=(16, 2, 6, 6))
        model.train()
        for _ in range(10):
            model.forward(x)  # populate running stats
        model.eval()
        expected = model.forward(x)
        folded = fold_batch_norm(model)
        folded.eval()
        np.testing.assert_allclose(folded.forward(x), expected, atol=1e-8)

    def test_folded_model_has_no_batchnorm(self):
        model = Sequential([Conv2d(1, 2, 3), BatchNorm2d(2), ReLU(),
                            Flatten(), Linear(2 * 2 * 2, 2)])
        folded = fold_batch_norm(model)
        assert not any(isinstance(l, BatchNorm2d) for l in folded.layers)


class TestConversion:
    def test_spec_structure(self):
        model = tiny_cnn()
        snn = ann_to_snn(model, random_images(8, (1, 12, 12)), num_steps=4)
        net = snn.network
        assert net.num_steps == 4
        assert net.weight_bits == 3
        assert len(net.conv_layers()) == 2
        assert len(net.linear_layers()) == 2
        assert net.linear_layers()[-1].is_output
        assert not net.linear_layers()[0].is_output

    def test_weights_in_3bit_range(self):
        snn = ann_to_snn(tiny_cnn(), random_images(8, (1, 12, 12)),
                         num_steps=4)
        for spec in snn.network.conv_layers():
            assert spec.weights.min() >= -3 and spec.weights.max() <= 3

    def test_output_head_uses_per_tensor_scale(self):
        """Per-channel scales on the head would corrupt the argmax."""
        snn = ann_to_snn(tiny_cnn(), random_images(8, (1, 12, 12)),
                         num_steps=4)
        head = snn.network.linear_layers()[-1]
        assert np.allclose(head.scales, head.scales[0])

    def test_rejects_bad_calibration_shape(self):
        with pytest.raises(ConversionError):
            ann_to_snn(tiny_cnn(), np.zeros((8, 12, 12)), num_steps=4)

    def test_higher_precision_tracks_float_model(self):
        """With generous bits/steps the SNN must match the float ANN."""
        model = tiny_cnn(seed=3)
        images = random_images(64, (1, 12, 12), seed=1)
        model.eval()
        float_pred = model.forward(images).argmax(axis=1)
        snn = ann_to_snn(model, images[:32], num_steps=10, weight_bits=10)
        agreement = (snn.predict(images) == float_pred).mean()
        assert agreement > 0.95


class TestExactnessInvariant:
    """The repo's central invariant (DESIGN.md §4)."""

    @given(st.integers(min_value=2, max_value=7),
           st.integers(min_value=0, max_value=3))
    @settings(max_examples=10, deadline=None)
    def test_spike_sim_equals_int_reference(self, num_steps, seed):
        model = tiny_cnn(seed=seed)
        images = random_images(4, (1, 12, 12), seed=seed + 10)
        snn = ann_to_snn(model, images, num_steps=num_steps)
        ref = snn.forward_ints(images)
        spike, _ = snn.forward_spikes(images)
        np.testing.assert_array_equal(ref, spike)

    def test_invariant_on_strided_padded_conv(self):
        rng = np.random.default_rng(0)
        model = Sequential([
            Conv2d(2, 3, kernel_size=3, stride=2, padding=1, rng=rng),
            ReLU(),
            Flatten(),
            Linear(3 * 5 * 5, 4, rng=rng)])
        images = random_images(4, (2, 9, 9), seed=5)
        snn = ann_to_snn(model, images, num_steps=4)
        ref = snn.forward_ints(images)
        spike, _ = snn.forward_spikes(images)
        np.testing.assert_array_equal(ref, spike)

    def test_spike_stats_collected(self):
        model = tiny_cnn()
        images = random_images(2, (1, 12, 12))
        snn = ann_to_snn(model, images, num_steps=3)
        _, stats = snn.forward_spikes(images, collect_stats=True)
        assert stats is not None
        assert stats.total_spikes > 0
        assert 0.0 < stats.mean_rate(3) <= 1.0
        assert len(stats.spikes_per_layer) == len(stats.neurons_per_layer)


class TestRequantize:
    def test_relu_behaviour(self):
        acc = np.array([[-5, 0, 5]])
        out = requantize(acc, np.array([1.0, 1.0, 1.0]), 3, channel_axis=1)
        np.testing.assert_array_equal(out, [[0, 0, 5]])

    def test_saturation(self):
        acc = np.array([[100]])
        out = requantize(acc, np.array([1.0]), 3, channel_axis=1)
        assert out[0, 0] == 7

    def test_rounds_to_nearest(self):
        acc = np.array([[1], [2]])
        out = requantize(acc, np.array([0.3]), 3, channel_axis=0)
        # 0.3 -> 0 (floor(0.8)), 0.6 -> 1 (floor(1.1))
        np.testing.assert_array_equal(out.ravel(), [0, 1])

    def test_per_channel_scales(self):
        acc = np.array([[4, 4]])
        out = requantize(acc, np.array([0.5, 1.0]), 4, channel_axis=1)
        np.testing.assert_array_equal(out, [[2, 4]])


class TestNeurons:
    def test_radix_neuron_computes_dot_product(self):
        neuron = RadixIFNeuron((1,), num_steps=3)
        # currents 1, 0, 1 -> potential 0b101 = 5
        neuron.integrate(np.array([1]))
        neuron.integrate(np.array([0]))
        neuron.integrate(np.array([1]))
        assert neuron.potential[0] == 5
        assert neuron.complete

    def test_radix_neuron_overflow_guard(self):
        neuron = RadixIFNeuron((1,), num_steps=1)
        neuron.integrate(np.array([1]))
        with pytest.raises(Exception):
            neuron.integrate(np.array([1]))

    def test_pool_spec_requires_power_of_two(self):
        with pytest.raises(ConversionError):
            QuantPoolSpec(size=3, stride=3, in_shape=(1, 6, 6),
                          out_shape=(1, 2, 2))

"""Tests for the rate-encoding baseline."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.encoding import (
    DeterministicRateEncoder,
    PoissonRateEncoder,
    decode_rate,
)
from repro.errors import EncodingError


class TestDeterministicRateEncoder:
    def test_zero_gives_no_spikes(self):
        train = DeterministicRateEncoder(8).encode(np.array([0.0]))
        assert train.num_spikes == 0

    def test_one_gives_all_spikes(self):
        train = DeterministicRateEncoder(8).encode(np.array([1.0]))
        assert train.num_spikes == 8

    def test_half_gives_half_spikes(self):
        train = DeterministicRateEncoder(10).encode(np.array([0.5]))
        assert train.num_spikes == 5

    def test_spikes_spread_not_bunched(self):
        train = DeterministicRateEncoder(10).encode(np.array([0.5]))
        bits = train.bits[:, 0]
        # No two consecutive duplicate runs: 5 spikes over 10 slots should
        # alternate rather than fill the first half.
        assert bits[:5].sum() < 5

    def test_deterministic(self):
        enc = DeterministicRateEncoder(7)
        values = np.linspace(0, 1, 13)
        a = enc.encode(values)
        b = enc.encode(values)
        np.testing.assert_array_equal(a.bits, b.bits)

    def test_clips_out_of_range(self):
        train = DeterministicRateEncoder(4).encode(np.array([-1.0, 2.0]))
        assert train.bits[:, 0].sum() == 0
        assert train.bits[:, 1].sum() == 4

    def test_rejects_zero_steps(self):
        with pytest.raises(EncodingError):
            DeterministicRateEncoder(0)

    @given(st.floats(min_value=0.0, max_value=1.0),
           st.integers(min_value=1, max_value=64))
    @settings(max_examples=60, deadline=None)
    def test_decode_error_bounded(self, value, num_steps):
        enc = DeterministicRateEncoder(num_steps)
        train = enc.encode(np.array([value]))
        decoded = decode_rate(train)[0]
        assert abs(decoded - value) <= 0.5 / num_steps + 1e-9


class TestPoissonRateEncoder:
    def test_seeded_reproducibility(self):
        a = PoissonRateEncoder(16, seed=3).encode(np.full(8, 0.5))
        b = PoissonRateEncoder(16, seed=3).encode(np.full(8, 0.5))
        np.testing.assert_array_equal(a.bits, b.bits)

    def test_rate_statistics(self):
        train = PoissonRateEncoder(2000, seed=0).encode(np.array([0.3]))
        assert abs(decode_rate(train)[0] - 0.3) < 0.05

    def test_extremes(self):
        enc = PoissonRateEncoder(50, seed=1)
        train = enc.encode(np.array([0.0, 1.0]))
        assert train.bits[:, 0].sum() == 0
        assert train.bits[:, 1].sum() == 50

    def test_rejects_zero_steps(self):
        with pytest.raises(EncodingError):
            PoissonRateEncoder(0)

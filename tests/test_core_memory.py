"""Tests for the memory system: ping-pong buffers, BRAM plan, DRAM model."""

import numpy as np
import pytest

from repro.core import AcceleratorConfig, BufferPair, DramModel, plan_bram
from repro.core.config import MemoryConfig
from repro.core.pingpong import PingPongBuffer
from repro.errors import CapacityError, ShapeError, SimulationError
from repro.models import performance_network, vgg11_performance_network


class TestPingPongBuffer:
    def test_write_then_swap_then_read(self):
        buf = PingPongBuffer("test", capacity_bits=1024)
        data = np.ones((4, 4), dtype=np.uint8)
        buf.write(data, bits_per_element=1)
        buf.swap()
        np.testing.assert_array_equal(buf.read(), data)

    def test_alternation(self):
        buf = PingPongBuffer("test", capacity_bits=1024)
        a = np.zeros(4, dtype=np.uint8)
        b = np.ones(4, dtype=np.uint8)
        buf.prime(a, 1)              # a readable
        buf.write(b, 1)              # layer output to other bank
        buf.swap()
        np.testing.assert_array_equal(buf.read(), b)
        assert buf.swaps == 2

    def test_read_before_any_write_raises(self):
        with pytest.raises(SimulationError):
            PingPongBuffer("test", 64).read()

    def test_capacity_enforced(self):
        buf = PingPongBuffer("test", capacity_bits=8)
        with pytest.raises(CapacityError):
            buf.write(np.ones(9, dtype=np.uint8), bits_per_element=1)

    def test_peak_tracking(self):
        buf = PingPongBuffer("test", capacity_bits=1024)
        buf.write(np.ones(10, dtype=np.uint8), 1)
        buf.swap()
        buf.write(np.ones(100, dtype=np.uint8), 1)
        assert buf.peak_bits == 100

    def test_zero_capacity_rejected(self):
        with pytest.raises(CapacityError):
            PingPongBuffer("bad", 0)


class TestBufferPair:
    def test_flatten_handoff(self):
        pair = BufferPair(1024, 1024)
        maps = np.arange(8, dtype=np.uint8).reshape(2, 2, 2) % 2
        pair.planar.prime(maps, 1)
        flat = pair.flatten_handoff(bits_per_element=1)
        assert flat.shape == (2, 4)
        np.testing.assert_array_equal(pair.flat.read(), flat)

    def test_total_peak(self):
        pair = BufferPair(1024, 1024)
        pair.planar.write(np.ones(16, dtype=np.uint8), 1)
        pair.flat.write(np.ones(4, dtype=np.uint8), 1)
        assert pair.total_peak_bits == 2 * (16 + 4)


class TestBramPlan:
    def _small_net(self, t=3):
        return performance_network(
            [("conv", 4, 3, 1, 0), ("pool", 2), ("flatten",),
             ("linear", 16), ("linear", 4)],
            input_shape=(1, 10, 10), num_steps=t)

    def test_bank_sized_to_largest_2d_tensor(self):
        net = self._small_net()
        plan = plan_bram(net, MemoryConfig(), weights_on_chip=True)
        # Largest 2-D tensor: conv output 4x8x8 = 256 elements, T=3 bits.
        assert plan.activation_2d_bits == 3 * 256

    def test_1d_bank_covers_linear_layers(self):
        net = self._small_net()
        plan = plan_bram(net, MemoryConfig(), weights_on_chip=True)
        assert plan.activation_1d_bits == 3 * 64  # flattened 4*4*4

    def test_weight_blocks_zero_when_streaming(self):
        net = self._small_net()
        plan = plan_bram(net, MemoryConfig(), weights_on_chip=False)
        assert plan.weight_blocks == 0
        plan_on = plan_bram(net, MemoryConfig(), weights_on_chip=True)
        assert plan_on.weight_blocks >= 1

    def test_scales_with_time_steps(self):
        small = plan_bram(self._small_net(3), MemoryConfig(), True)
        large = plan_bram(self._small_net(6), MemoryConfig(), True)
        assert large.activation_2d_bits == 2 * small.activation_2d_bits

    def test_vgg_needs_substantial_activation_memory(self):
        net = vgg11_performance_network(num_steps=6)
        plan = plan_bram(net, MemoryConfig(), weights_on_chip=False)
        # 64ch x 32x32 maps at 6 bits: ~0.4 Mbit per bank.
        assert plan.activation_2d_bits == 6 * 64 * 32 * 32
        assert plan.total_blocks > 20


class TestDramModel:
    def test_transfer_cycles(self):
        dram = DramModel(MemoryConfig(dram_bandwidth_bits=64,
                                      dram_burst_setup_cycles=10))
        cycles = dram.stream("conv1", bits=640)
        assert cycles == 640 // 64 + 10

    def test_rounds_partial_words_up(self):
        dram = DramModel(MemoryConfig(dram_bandwidth_bits=64,
                                      dram_burst_setup_cycles=0))
        assert dram.stream("x", bits=65) == 2

    def test_accumulates_totals(self):
        dram = DramModel(MemoryConfig())
        dram.stream("a", 128)
        dram.stream("b", 256)
        assert dram.total_bits == 384
        assert len(dram.transfers) == 2
        assert dram.was_used

    def test_zero_bits_is_free(self):
        dram = DramModel(MemoryConfig())
        assert dram.stream("empty", 0) == 0
        assert not dram.was_used

    def test_negative_rejected(self):
        with pytest.raises(ShapeError):
            DramModel(MemoryConfig()).stream("bad", -1)


class TestAcceleratorConfigValidation:
    def test_defaults_match_paper(self):
        config = AcceleratorConfig()
        assert config.conv_unit.columns == 30
        assert config.conv_unit.rows == 5
        assert config.pool_unit.columns == 14
        assert config.pool_unit.rows == 2
        assert config.clock_mhz == 100.0
        assert config.weight_bits == 3

    def test_with_units_and_clock(self):
        config = AcceleratorConfig().with_units(8).with_clock(200.0)
        assert config.num_conv_units == 8
        assert config.clock_mhz == 200.0
        assert config.cycle_time_us == pytest.approx(0.005)

    def test_for_network_sizes_from_geometry(self):
        net = vgg11_performance_network(num_steps=6)
        config = AcceleratorConfig.for_network(net, num_conv_units=8,
                                               clock_mhz=115.0)
        assert config.conv_unit.columns == 32  # widest conv output row
        assert config.conv_unit.rows == 3      # 3x3 kernels
        assert config.pool_unit.columns == 16  # widest pooled row

    def test_invalid_configs_rejected(self):
        from repro.errors import ConfigurationError
        with pytest.raises(ConfigurationError):
            AcceleratorConfig(num_conv_units=0)
        with pytest.raises(ConfigurationError):
            AcceleratorConfig(clock_mhz=0)
        with pytest.raises(ConfigurationError):
            AcceleratorConfig(weight_bits=1)

    def test_channels_per_unit_capacity(self):
        from repro.core.config import ConvUnitConfig
        from repro.errors import ConfigurationError
        unit = ConvUnitConfig(columns=30, rows=5)
        assert unit.channels_per_unit(out_width=30) == 1
        assert unit.channels_per_unit(out_width=10) == 3
        with pytest.raises(ConfigurationError):
            unit.channels_per_unit(out_width=31)

"""The calibration subsystem: measured crossovers, persisted and wired.

Pinned here:

* :class:`CalibrationTable` survives the artifact store round trip, and
  :func:`calibrate_deployment` persists on first measure then serves
  the table from the store (``cached=True``) on re-runs;
* the crossover fit behaves at the edges (sparse always wins, dense
  always wins, interpolation between probes);
* a table only moves *where* the sparse engine switches strategy —
  logits and traces stay bit-identical to the vectorized engine under
  adversarially extreme thresholds in both directions;
* :func:`install_table` wires the measured COO ratio into the codec,
  the ``coo_ratio=`` keyword overrides it per frame;
* ``SweepDriver(saturate=True)`` changes scheduling only: merged
  outcomes are bit-identical to the fixed-shard run, the summary says
  so, and combining it with ``adaptive`` is rejected.
"""

import numpy as np
import pytest

from repro.core import AcceleratorConfig
from repro.core.calibration import DEFAULT_LATENCY
from repro.core.engine import (
    CalibrationTable,
    SparseEngine,
    VectorizedEngine,
    calibrate_deployment,
    calibration_store_key,
    clear_calibration_tables,
    install_table,
    lookup_table,
    thresholds_for,
    warm_compile,
)
from repro.core.engine.cache import content_key
from repro.core.engine.calibrate import (
    DEFAULT_DENSE_FALLBACK,
    EngineThresholds,
    _crossover,
    probe_batch,
)
from repro.errors import ConfigurationError
from repro.harness.artifacts import ArtifactStore
from repro.harness.sweep import SweepDriver, SweepTask
from repro.models import performance_network
from repro.runtime import codec


def tiny_network(rng, num_steps=3):
    return performance_network(
        [("conv", 4, 3, 1, 1), ("pool", 2), ("flatten",), ("linear", 5)],
        input_shape=(1, 8, 8), num_steps=num_steps,
        seed=int(rng.integers(1 << 16)))


@pytest.fixture(autouse=True)
def _isolated_tables():
    """Each test starts and ends with no installed tables."""
    clear_calibration_tables()
    ratio = codec.get_coo_ratio()
    yield
    clear_calibration_tables()
    codec.set_coo_ratio(ratio)


class TestCalibrationTable:
    def test_dict_roundtrip(self):
        table = CalibrationTable(
            content_key="abc123", backend_crossover=0.31,
            hook_crossovers={"conv1:conv": 0.7, "fc1:linear": 0.4},
            popcount_gather=0.45, coo_ratio=0.8, dispatch_cost_s=1.5e-3,
            probe_images=8, densities=(0.02, 0.5),
            probes={"backend": [[0.02, 1.0, 2.0]]})
        restored = CalibrationTable.from_dict(table.to_dict())
        assert restored == table

    def test_crossover_fit_edges(self):
        # Sparse wins everywhere: never fall back.
        assert _crossover([(0.1, 1.0, 2.0), (0.9, 1.0, 2.0)]) == 1.0
        # Dense wins from the first probe: crossover below it.
        assert _crossover([(0.1, 2.0, 1.0), (0.9, 2.0, 1.0)]) == 0.05
        # Equal margins either side: crossover at the midpoint.
        fit = _crossover([(0.2, 1.0, 2.0), (0.6, 2.0, 1.0)])
        assert fit == pytest.approx(0.4)
        assert _crossover([]) == DEFAULT_DENSE_FALLBACK

    def test_probe_batch_hits_target_density(self, rng):
        for density in (0.05, 0.3, 0.9):
            images = probe_batch((1, 16, 16), density, 8, rng)
            realized = np.count_nonzero(images) / images.size
            assert realized == pytest.approx(density, rel=0.5)
        silent = probe_batch((1, 16, 16), 0.1, 32, rng, silent_frac=1.0)
        assert not silent.any()

    def test_fallback_for_named_layer(self):
        table = CalibrationTable(content_key="k",
                                 hook_crossovers={"conv1:conv": 0.6})
        assert table.fallback_for("conv1", "conv") == 0.6
        assert table.fallback_for("fc9", "linear") == \
            DEFAULT_DENSE_FALLBACK


class TestCalibrateDeployment:
    def test_measures_persists_and_reuses(self, rng, tmp_path):
        net = tiny_network(rng)
        config = AcceleratorConfig.for_network(net)
        store = ArtifactStore(tmp_path)
        table, cached = calibrate_deployment(
            net, config, store=store, batch=4, rounds=1,
            densities=(0.05, 0.5, 0.9))
        assert not cached
        # Keyed exactly as the warm cache keys this deployment.
        key = content_key(net, config, DEFAULT_LATENCY)
        assert table.content_key == key
        assert store.has_result(calibration_store_key(key))
        assert 0.0 <= table.backend_crossover <= 1.0
        assert 0.0 <= table.popcount_gather <= 1.0
        assert 0.1 <= table.coo_ratio <= 1.0
        for label, crossover in table.hook_crossovers.items():
            assert 0.0 <= crossover <= 1.0, label
        assert table.hook_crossovers, "per-layer probes produced nothing"

        # Second run: served from the store, not re-measured.
        clear_calibration_tables()
        again, cached = calibrate_deployment(net, config, store=store)
        assert cached
        assert again == table
        # ...and installed, so engine thresholds now come from it.
        thresholds = thresholds_for(warm_compile(net, config))
        assert thresholds.calibrated
        assert thresholds.route_density == table.backend_crossover

    def test_force_remeasures(self, rng, tmp_path):
        net = tiny_network(rng)
        config = AcceleratorConfig.for_network(net)
        store = ArtifactStore(tmp_path)
        calibrate_deployment(net, config, store=store, batch=4,
                             rounds=1, densities=(0.05, 0.9))
        _, cached = calibrate_deployment(net, config, store=store,
                                         force=True, batch=4, rounds=1,
                                         densities=(0.05, 0.9))
        assert not cached

    def test_lookup_miss_is_negative_cached(self, rng, tmp_path):
        assert lookup_table("no-such-key",
                            store=ArtifactStore(tmp_path)) is None
        assert lookup_table("no-such-key") is None
        table = CalibrationTable(content_key="no-such-key")
        install_table(table)
        assert lookup_table("no-such-key") is table


class TestThresholdsOnlyMoveStrategy:
    """Extreme thresholds in both directions cannot change a bit."""

    def test_sparse_bit_identical_under_extreme_thresholds(self, rng):
        net = tiny_network(rng)
        compiled = warm_compile(net, AcceleratorConfig.for_network(net))
        shape = tuple(net.input_shape)
        batches = [probe_batch(shape, d, 6, rng)
                   for d in (0.0, 0.05, 0.5, 0.95)]
        dense = VectorizedEngine(compiled)
        sparse = SparseEngine(compiled)
        for extreme in (0.0, 1.0):
            sparse.apply_thresholds(EngineThresholds(
                dense_fallback=extreme, popcount_gather=extreme,
                by_layer={}))
            for images in batches:
                want_logits, want_traces = dense.run_batch(images)
                got_logits, got_traces = sparse.run_batch(images)
                np.testing.assert_array_equal(got_logits, want_logits)
                for got, want in zip(got_traces, want_traces):
                    assert got.total_cycles == want.total_cycles
                    assert got.total_adder_ops == want.total_adder_ops

    def test_installed_table_reaches_new_engines(self, rng):
        net = tiny_network(rng)
        config = AcceleratorConfig.for_network(net)
        compiled = warm_compile(net, config)
        layer_names = [p.name for p in compiled.programs
                       if p.kind in ("conv", "linear")]
        table = CalibrationTable(
            content_key=content_key(net, config, DEFAULT_LATENCY),
            backend_crossover=0.42, popcount_gather=0.33,
            hook_crossovers={f"{layer_names[0]}:conv": 0.11})
        install_table(table)
        engine = SparseEngine(compiled)
        assert engine.thresholds.calibrated
        assert engine._popcount_gather == 0.33
        conv_spec = next(p.spec for p in compiled.programs
                         if p.kind == "conv")
        linear_spec = next(p.spec for p in compiled.programs
                           if p.kind == "linear")
        assert engine._fallback_for(conv_spec) == 0.11
        # Uncalibrated layers keep the default crossover.
        assert engine._fallback_for(linear_spec) == \
            DEFAULT_DENSE_FALLBACK


class TestCodecRatioWiring:
    def test_install_table_sets_codec_ratio(self):
        install_table(CalibrationTable(content_key="k", coo_ratio=0.55))
        assert codec.get_coo_ratio() == 0.55

    def test_ratio_moves_the_encoding_choice(self, rng):
        # ~30% dense float64 array: COO costs ~0.45x raw bytes, so it
        # ships COO above that ratio and raw below.
        array = rng.random((1, 32, 32)) * (rng.random((1, 32, 32)) < 0.3)
        nnz = int(np.count_nonzero(array))
        byte_ratio = nnz * (4 + array.itemsize) / array.nbytes
        codec.set_coo_ratio(byte_ratio * 1.2)
        assert codec._sparse_wins(array, nnz)
        codec.set_coo_ratio(byte_ratio * 0.8)
        assert not codec._sparse_wins(array, nnz)
        # The per-frame keyword outranks the process-wide setting...
        frame = codec.encode_frame({}, {"x": array}, coo_ratio=2.0)
        hlen, _ = codec.parse_frame_prefix(
            frame[:codec.FRAME_PREFIX_LEN])
        header = frame[codec.FRAME_PREFIX_LEN:
                       codec.FRAME_PREFIX_LEN + hlen]
        _, arrays = codec.decode_frame(
            header, frame[codec.FRAME_PREFIX_LEN + hlen:])
        # ...and either representation rebuilds the array bit-for-bit.
        np.testing.assert_array_equal(arrays["x"], array)


class TestSaturatingShards:
    def test_saturate_is_scheduling_only(self, rng):
        net = tiny_network(rng)
        config = AcceleratorConfig.for_network(net)
        images = rng.random((48,) + tuple(net.input_shape))
        labels = rng.integers(0, 5, size=48)

        def outcome(**kwargs):
            task = SweepTask(key="cell", network=net, config=config,
                             images=images, labels=labels)
            driver = SweepDriver(workers=1, shard_size=8, **kwargs)
            result = driver.run([task])["cell"]
            return result, driver.last_summary

        fixed, fixed_summary = outcome()
        saturated, summary = outcome(saturate=True)
        np.testing.assert_array_equal(saturated.predictions,
                                      fixed.predictions)
        assert saturated.trace.total_cycles == fixed.trace.total_cycles
        assert (saturated.trace.total_adder_ops
                == fixed.trace.total_adder_ops)
        assert summary.saturate and not fixed_summary.saturate
        assert summary.task_shard_sizes["cell"] >= 1

    def test_saturate_uses_calibrated_dispatch_cost(self, rng):
        net = tiny_network(rng)
        config = AcceleratorConfig.for_network(net)
        # A huge measured dispatch cost must push shards to the balance
        # cap; a tiny one must allow small shards.
        install_table(CalibrationTable(
            content_key=content_key(net, config, DEFAULT_LATENCY),
            dispatch_cost_s=10.0))
        driver = SweepDriver(workers=1, saturate=True)
        task = SweepTask(key="cell", network=net, config=config,
                         images=rng.random((40,) + tuple(net.input_shape)),
                         labels=np.zeros(40, dtype=np.int64))
        sizes = driver._saturating_shard_sizes([task])
        assert sizes == [20]  # ceil(40 / (1 lane * 2)) balance cap

    def test_adaptive_and_saturate_are_exclusive(self):
        with pytest.raises(ConfigurationError):
            SweepDriver(adaptive=True, saturate=True)

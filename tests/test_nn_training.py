"""Tests for losses, optimizers, schedules, the trainer and save/load."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.nn import (
    Adam,
    CosineSchedule,
    CrossEntropyLoss,
    Flatten,
    Linear,
    ReLU,
    SGD,
    Sequential,
    StepSchedule,
    Trainer,
    evaluate_accuracy,
    softmax,
)


def tiny_classifier(seed=0):
    rng = np.random.default_rng(seed)
    return Sequential([
        Linear(8, 16, rng=rng), ReLU(), Linear(16, 3, rng=rng)])


def blob_dataset(n=300, seed=0):
    """Three well-separated Gaussian blobs in 8 dimensions."""
    rng = np.random.default_rng(seed)
    centers = rng.normal(scale=3.0, size=(3, 8))
    labels = rng.integers(0, 3, size=n)
    x = centers[labels] + rng.normal(scale=0.5, size=(n, 8))
    return x, labels


class TestSoftmaxAndLoss:
    def test_softmax_rows_sum_to_one(self):
        probs = softmax(np.random.default_rng(0).normal(size=(5, 7)))
        np.testing.assert_allclose(probs.sum(axis=1), np.ones(5))

    def test_softmax_stability_large_logits(self):
        probs = softmax(np.array([[1000.0, 1000.0]]))
        np.testing.assert_allclose(probs, [[0.5, 0.5]])

    def test_perfect_prediction_low_loss(self):
        loss = CrossEntropyLoss()
        logits = np.array([[10.0, -10.0], [-10.0, 10.0]])
        assert loss.forward(logits, np.array([0, 1])) < 1e-4

    def test_uniform_prediction_log_k(self):
        loss = CrossEntropyLoss()
        logits = np.zeros((4, 10))
        value = loss.forward(logits, np.zeros(4, dtype=int))
        assert value == pytest.approx(np.log(10), rel=1e-6)

    def test_gradient_matches_numerical(self):
        loss = CrossEntropyLoss(label_smoothing=0.1)
        rng = np.random.default_rng(0)
        logits = rng.normal(size=(3, 4))
        targets = np.array([0, 2, 1])
        loss.forward(logits, targets)
        grad = loss.backward()
        eps = 1e-6
        for idx in [(0, 0), (1, 2), (2, 3)]:
            lp = logits.copy()
            lp[idx] += eps
            lm = logits.copy()
            lm[idx] -= eps
            numeric = (loss.forward(lp, targets)
                       - loss.forward(lm, targets)) / (2 * eps)
            assert grad[idx] == pytest.approx(numeric, rel=1e-4)

    def test_shape_validation(self):
        loss = CrossEntropyLoss()
        with pytest.raises(ShapeError):
            loss.forward(np.zeros((2, 3)), np.zeros(3, dtype=int))
        with pytest.raises(ShapeError):
            CrossEntropyLoss(label_smoothing=1.0)


class TestOptimizers:
    def test_sgd_descends_quadratic(self):
        w = np.array([5.0, -3.0])
        opt = SGD([w], lr=0.1, momentum=0.0)
        for _ in range(200):
            opt.step([2 * w])  # d/dw ||w||^2
        assert np.abs(w).max() < 1e-3

    def test_sgd_momentum_accelerates(self):
        w_plain = np.array([5.0])
        w_mom = np.array([5.0])
        plain = SGD([w_plain], lr=0.01, momentum=0.0)
        mom = SGD([w_mom], lr=0.01, momentum=0.9)
        for _ in range(30):
            plain.step([2 * w_plain])
            mom.step([2 * w_mom])
        assert abs(w_mom[0]) < abs(w_plain[0])

    def test_adam_descends_quadratic(self):
        w = np.array([5.0, -3.0, 1.0])
        opt = Adam([w], lr=0.05)
        for _ in range(500):
            opt.step([2 * w])
        assert np.abs(w).max() < 1e-2

    def test_weight_decay_shrinks(self):
        w = np.array([1.0])
        opt = SGD([w], lr=0.1, momentum=0.0, weight_decay=0.5)
        opt.step([np.zeros(1)])
        assert w[0] < 1.0

    def test_gradient_count_mismatch(self):
        opt = SGD([np.zeros(2)], lr=0.1)
        with pytest.raises(ShapeError):
            opt.step([])

    def test_invalid_lr(self):
        with pytest.raises(ShapeError):
            Adam([np.zeros(1)], lr=0.0)


class TestSchedules:
    def test_cosine_endpoints(self):
        sched = CosineSchedule(1.0, 100, min_lr=0.1)
        assert sched.lr_at(0) == pytest.approx(1.0)
        assert sched.lr_at(100) == pytest.approx(0.1)
        assert 0.1 < sched.lr_at(50) < 1.0

    def test_step_schedule(self):
        sched = StepSchedule(1.0, milestones=[10, 20], gamma=0.1)
        assert sched.lr_at(5) == pytest.approx(1.0)
        assert sched.lr_at(15) == pytest.approx(0.1)
        assert sched.lr_at(25) == pytest.approx(0.01)

    def test_apply_mutates_optimizer(self):
        opt = SGD([np.zeros(1)], lr=1.0)
        CosineSchedule(1.0, 10).apply(opt, 10)
        assert opt.lr == pytest.approx(0.0)


class TestTrainer:
    def test_learns_separable_blobs(self):
        x, y = blob_dataset()
        model = tiny_classifier()
        trainer = Trainer(model, Adam(model.params(), lr=1e-2),
                          batch_size=32)
        log = trainer.fit(x, y, epochs=10)
        assert log.train_accuracies[-1] > 0.95
        assert log.losses[-1] < log.losses[0]

    def test_eval_accuracy_on_untrained_is_chancey(self):
        x, y = blob_dataset(seed=1)
        acc = evaluate_accuracy(tiny_classifier(seed=5), x, y)
        assert acc < 0.9  # untrained should not be near-perfect

    def test_log_tracks_test_accuracy(self):
        x, y = blob_dataset()
        model = tiny_classifier()
        trainer = Trainer(model, Adam(model.params(), lr=1e-2))
        log = trainer.fit(x[:200], y[:200], x[200:], y[200:], epochs=2)
        assert len(log.test_accuracies) == 2
        assert log.best_test_accuracy >= log.test_accuracies[0] - 1e-12


class TestSequentialSerialization:
    def test_save_load_roundtrip(self, tmp_path):
        model = tiny_classifier(seed=1)
        x = np.random.default_rng(0).normal(size=(4, 8))
        expected = model.forward(x)
        path = tmp_path / "model.npz"
        model.save(path)
        fresh = tiny_classifier(seed=2)
        fresh.load(path)
        np.testing.assert_allclose(fresh.forward(x), expected)

    def test_load_shape_mismatch_raises(self, tmp_path):
        model = tiny_classifier()
        model.save(tmp_path / "m.npz")
        other = Sequential([Linear(8, 17), ReLU(), Linear(17, 3)])
        with pytest.raises(ShapeError):
            other.load(tmp_path / "m.npz")

    def test_num_parameters(self):
        model = tiny_classifier()
        assert model.num_parameters() == 8 * 16 + 16 + 16 * 3 + 3

    def test_empty_network_rejected(self):
        with pytest.raises(ShapeError):
            Sequential([])

    def test_train_eval_propagates(self):
        model = Sequential([Linear(2, 2), ReLU(), Flatten()])
        model.eval()
        assert all(not l.training for l in model.layers)
        model.train()
        assert all(l.training for l in model.layers)

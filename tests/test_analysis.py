"""Tests for the analysis extensions (fault injection, sparsity, Pareto)."""

import numpy as np
import pytest

from repro.analysis import (
    DesignPoint,
    flip_weight_bits,
    measure_sparsity,
    pareto_front,
    sensitivity_curve,
    sweep_design_space,
)
from repro.data.dataset import Dataset
from repro.errors import SimulationError
from repro.models import performance_network
from repro.snn import SNNModel


def small_net(seed=0):
    return performance_network(
        [("conv", 4, 3, 1, 0), ("pool", 2), ("flatten",), ("linear", 8),
         ("linear", 3)],
        input_shape=(1, 10, 10), num_steps=3, seed=seed)


def small_dataset(n=40, seed=0):
    rng = np.random.default_rng(seed)
    return Dataset(rng.random((n, 1, 10, 10)), rng.integers(0, 3, n), 3)


class TestFaultInjection:
    def test_zero_fraction_is_identity(self):
        net = small_net()
        mutated, flips = flip_weight_bits(net, 0.0)
        assert flips == 0
        for a, b in zip(net.conv_layers(), mutated.conv_layers()):
            np.testing.assert_array_equal(a.weights, b.weights)

    def test_flip_count_tracks_fraction(self):
        net = small_net()
        _, flips = flip_weight_bits(net, 0.1, seed=1)
        total_bits = net.num_parameters * net.weight_bits
        assert flips == pytest.approx(0.1 * total_bits, rel=0.2)

    def test_flipped_weights_stay_in_range(self):
        """A bit flip in the 3-bit encoding must stay a valid 3-bit
        two's-complement value."""
        net = small_net()
        mutated, _ = flip_weight_bits(net, 0.3, seed=2)
        for spec in mutated.conv_layers():
            assert spec.weights.min() >= -4
            assert spec.weights.max() <= 3

    def test_flip_changes_some_weights(self):
        net = small_net()
        mutated, flips = flip_weight_bits(net, 0.05, seed=3)
        assert flips > 0
        diffs = sum(
            int((a.weights != b.weights).sum())
            for a, b in zip(net.conv_layers(), mutated.conv_layers()))
        diffs += sum(
            int((a.weights != b.weights).sum())
            for a, b in zip(net.linear_layers(), mutated.linear_layers()))
        assert diffs > 0

    def test_deterministic_given_seed(self):
        net = small_net()
        a, _ = flip_weight_bits(net, 0.05, seed=7)
        b, _ = flip_weight_bits(net, 0.05, seed=7)
        for sa, sb in zip(a.conv_layers(), b.conv_layers()):
            np.testing.assert_array_equal(sa.weights, sb.weights)

    def test_invalid_fraction_rejected(self):
        with pytest.raises(SimulationError):
            flip_weight_bits(small_net(), 1.5)

    def test_sensitivity_curve_starts_at_baseline(self):
        snn = SNNModel(small_net())
        data = small_dataset()
        curve = sensitivity_curve(snn, data,
                                  flip_fractions=(0.0, 0.2), seed=0)
        assert curve[0].flip_fraction == 0.0
        assert curve[0].accuracy == pytest.approx(snn.accuracy(data))
        assert len(curve) == 2


class TestSparsity:
    def test_rates_bounded(self):
        snn = SNNModel(small_net())
        report = measure_sparsity(snn, small_dataset(), max_samples=8)
        assert 0.0 <= report.overall_rate <= 1.0
        for layer in report.layers:
            assert 0.0 <= layer.spike_rate <= 1.0
            assert layer.num_neurons > 0

    def test_bright_inputs_are_denser(self):
        snn = SNNModel(small_net())
        dark = Dataset(np.zeros((8, 1, 10, 10)),
                       np.zeros(8, dtype=int), 3)
        bright = Dataset(np.full((8, 1, 10, 10), 0.95),
                         np.zeros(8, dtype=int), 3)
        dark_rate = measure_sparsity(snn, dark).overall_rate
        bright_rate = measure_sparsity(snn, bright).overall_rate
        assert bright_rate > dark_rate

    def test_densest_layer_lookup(self):
        snn = SNNModel(small_net())
        report = measure_sparsity(snn, small_dataset(), max_samples=8)
        densest = report.densest_layer()
        assert densest.spike_rate == max(
            l.spike_rate for l in report.layers)


class TestParetoFront:
    def test_sweep_covers_grid(self):
        points = sweep_design_space(small_net(), unit_counts=(1, 2),
                                    clocks_mhz=(100.0, 200.0))
        assert len(points) == 4

    def test_dominance_semantics(self):
        a = DesignPoint(1, 100.0, latency_us=100, power_w=3.0, luts=10_000)
        b = DesignPoint(2, 100.0, latency_us=200, power_w=3.5, luts=20_000)
        c = DesignPoint(4, 100.0, latency_us=50, power_w=4.0, luts=30_000)
        assert a.dominates(b)
        assert not a.dominates(c) and not c.dominates(a)

    def test_front_is_non_dominated(self):
        points = sweep_design_space(small_net())
        front = pareto_front(points)
        assert front
        for p in front:
            assert not any(q.dominates(p) for q in points)

    def test_front_contains_fastest_and_leanest(self):
        points = sweep_design_space(small_net())
        front = pareto_front(points)
        fastest = min(points, key=lambda p: p.latency_us)
        leanest = min(points, key=lambda p: (p.luts, p.latency_us))
        assert any(p.objectives() == fastest.objectives() for p in front)
        assert any(p.luts == leanest.luts for p in front)

    def test_energy_derived(self):
        p = DesignPoint(1, 100.0, latency_us=1000, power_w=3.0, luts=1)
        assert p.energy_mj == pytest.approx(3.0)

"""Cross-backend equivalence: the vectorized engine must be bit- and
trace-identical to the reference shift-register/adder-array model.

Every test runs both engines on the same deployment and asserts (a)
bit-identical integer logits and (b) identical execution traces — cycle
counts, DRAM cycles, data-dependent adder-operation counts, and every
memory-traffic counter, layer by layer.  Randomness flows through the
shared ``rng`` fixture (tests/conftest.py) so failures reproduce.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.core import (
    Accelerator,
    AcceleratorConfig,
    Controller,
    ReferenceEngine,
    VectorizedEngine,
    available_backends,
    compile_network,
    create_engine,
)
from repro.core.config import LinearUnitConfig, MemoryConfig
from repro.errors import ConfigurationError, ShapeError
from repro.models import performance_network
from repro.snn import SNNModel

TRAFFIC_FIELDS = ("activation_read_bits", "activation_write_bits",
                  "kernel_read_values", "weight_stream_bits")


def assert_traces_identical(ref_trace, vec_trace):
    """Full structural equality of two execution traces."""
    assert ref_trace.input_cycles == vec_trace.input_cycles
    assert len(ref_trace.layers) == len(vec_trace.layers)
    for ref_layer, vec_layer in zip(ref_trace.layers, vec_trace.layers):
        context = ref_layer.name
        assert ref_layer.name == vec_layer.name, context
        assert ref_layer.kind == vec_layer.kind, context
        assert ref_layer.cycles == vec_layer.cycles, context
        assert ref_layer.dram_cycles == vec_layer.dram_cycles, context
        assert ref_layer.adder_ops == vec_layer.adder_ops, context
        for field in TRAFFIC_FIELDS:
            assert (getattr(ref_layer.traffic, field)
                    == getattr(vec_layer.traffic, field)), (context, field)
    assert ref_trace.total_cycles == vec_trace.total_cycles
    assert ref_trace.total_adder_ops == vec_trace.total_adder_ops


def run_both(net, config, images):
    """Run a batch on every backend; returns (logits, traces) pairs.

    The ``sparse`` backend is asserted bit- and trace-identical to the
    reference inline, so every caller's scenario covers it; the return
    keeps the historical (reference, vectorized) two-way unpacking.
    """
    snn = SNNModel(net)
    results = {}
    for backend in ("reference", "vectorized", "sparse"):
        accelerator = Accelerator(config, backend=backend)
        accelerator.deploy(snn)
        results[backend] = accelerator.run_logits(images)
    ref_logits, ref_traces = results["reference"]
    sparse_logits, sparse_traces = results["sparse"]
    np.testing.assert_array_equal(ref_logits, sparse_logits)
    for ref_trace, sparse_trace in zip(ref_traces, sparse_traces):
        assert_traces_identical(ref_trace, sparse_trace)
    return [results["reference"], results["vectorized"]]


LAYER_STACKS = {
    "conv-pool-fc": [("conv", 4, 3, 1, 1), ("pool", 2),
                     ("flatten",), ("linear", 16), ("linear", 5)],
    "strided-conv": [("conv", 3, 3, 2, 0), ("conv", 5, 3, 1, 1),
                     ("flatten",), ("linear", 6)],
    "padded-strided": [("conv", 5, 3, 2, 1), ("pool", 2),
                       ("flatten",), ("linear", 8), ("linear", 4)],
    "1x1-conv": [("conv", 8, 1, 1, 0), ("pool", 2),
                 ("flatten",), ("linear", 4)],
    "deep": [("conv", 4, 3, 1, 1), ("pool", 2), ("conv", 6, 3, 1, 0),
             ("flatten",), ("linear", 16), ("linear", 12), ("linear", 5)],
}


class TestRandomLayerEquivalence:
    @pytest.mark.parametrize("stack", sorted(LAYER_STACKS))
    @pytest.mark.parametrize("num_steps", [3, 5])
    def test_bit_and_trace_identical(self, stack, num_steps, rng):
        net = performance_network(
            LAYER_STACKS[stack], input_shape=(1, 10, 10),
            num_steps=num_steps, seed=int(rng.integers(1 << 16)))
        config = AcceleratorConfig.for_network(
            net, num_conv_units=int(rng.integers(1, 4)))
        images = rng.random((3,) + net.input_shape)
        (ref_logits, ref_traces), (vec_logits, vec_traces) = run_both(
            net, config, images)
        np.testing.assert_array_equal(ref_logits, vec_logits)
        for ref_trace, vec_trace in zip(ref_traces, vec_traces):
            assert_traces_identical(ref_trace, vec_trace)

    def test_multi_channel_input(self, rng):
        net = performance_network(
            [("conv", 4, 3, 1, 1), ("pool", 2), ("flatten",),
             ("linear", 6)],
            input_shape=(3, 8, 8), num_steps=4,
            seed=int(rng.integers(1 << 16)))
        config = AcceleratorConfig.for_network(net, num_conv_units=2)
        images = rng.random((2,) + net.input_shape)
        (ref_logits, ref_traces), (vec_logits, vec_traces) = run_both(
            net, config, images)
        np.testing.assert_array_equal(ref_logits, vec_logits)
        assert_traces_identical(ref_traces[0], vec_traces[0])

    def test_narrow_linear_unit(self, rng):
        net = performance_network(
            [("conv", 2, 3, 1, 1), ("flatten",), ("linear", 9),
             ("linear", 4)],
            input_shape=(1, 5, 5), num_steps=3,
            seed=int(rng.integers(1 << 16)))
        config = replace(AcceleratorConfig.for_network(net),
                         linear_unit=LinearUnitConfig(parallel_outputs=2))
        images = rng.random((2,) + net.input_shape)
        (ref_logits, ref_traces), (vec_logits, vec_traces) = run_both(
            net, config, images)
        np.testing.assert_array_equal(ref_logits, vec_logits)
        assert_traces_identical(ref_traces[1], vec_traces[1])

    def test_dram_streaming_path(self, rng):
        """Off-chip weights: DRAM cycles and stream traffic must agree."""
        net = performance_network(
            [("conv", 4, 3, 1, 1), ("pool", 2), ("flatten",),
             ("linear", 8), ("linear", 3)],
            input_shape=(1, 10, 10), num_steps=3,
            seed=int(rng.integers(1 << 16)))
        config = replace(AcceleratorConfig.for_network(net),
                         memory=MemoryConfig(onchip_weight_capacity=1))
        images = rng.random((2,) + net.input_shape)
        (ref_logits, ref_traces), (vec_logits, vec_traces) = run_both(
            net, config, images)
        np.testing.assert_array_equal(ref_logits, vec_logits)
        assert_traces_identical(ref_traces[0], vec_traces[0])
        assert any(l.dram_cycles > 0 for l in vec_traces[0].layers)
        assert vec_traces[0].total_traffic().weight_stream_bits > 0


def lenet5_network(num_steps, seed):
    """LeNet-5 geometry with random quantized weights (no training)."""
    return performance_network(
        [("conv", 6, 5, 1, 0), ("pool", 2), ("conv", 16, 5, 1, 0),
         ("pool", 2), ("conv", 120, 5, 1, 0), ("flatten",),
         ("linear", 120), ("linear", 84), ("linear", 10)],
        input_shape=(1, 32, 32), num_steps=num_steps, seed=seed)


class TestLeNetEndToEnd:
    def test_lenet_bit_and_trace_identical(self, rng):
        net = lenet5_network(num_steps=3, seed=int(rng.integers(1 << 16)))
        config = AcceleratorConfig.for_network(net, num_conv_units=2)
        images = rng.random((2,) + net.input_shape)
        (ref_logits, ref_traces), (vec_logits, vec_traces) = run_both(
            net, config, images)
        np.testing.assert_array_equal(ref_logits, vec_logits)
        for ref_trace, vec_trace in zip(ref_traces, vec_traces):
            assert_traces_identical(ref_trace, vec_trace)

    def test_lenet_matches_snn_reference(self, rng):
        """Both engines must equal the integer reference semantics."""
        net = lenet5_network(num_steps=4, seed=int(rng.integers(1 << 16)))
        snn = SNNModel(net)
        images = rng.random((2,) + net.input_shape)
        expected = snn.forward_ints(images)
        accelerator = Accelerator(
            AcceleratorConfig.for_network(net), backend="vectorized")
        accelerator.deploy(snn)
        logits, _ = accelerator.run_logits(images)
        np.testing.assert_array_equal(logits, expected)


class TestVectorizedBatching:
    def test_batch_equals_per_image_runs(self, rng):
        net = performance_network(
            [("conv", 4, 3, 1, 1), ("pool", 2), ("flatten",),
             ("linear", 5)],
            input_shape=(1, 8, 8), num_steps=3,
            seed=int(rng.integers(1 << 16)))
        accelerator = Accelerator(AcceleratorConfig.for_network(net),
                                  backend="vectorized")
        accelerator.deploy(SNNModel(net))
        images = rng.random((4,) + net.input_shape)
        batch_logits, batch_traces = accelerator.run_logits(images)
        for i in range(images.shape[0]):
            logits, trace = accelerator.run_image(images[i])
            np.testing.assert_array_equal(logits, batch_logits[i])
            assert_traces_identical(trace, batch_traces[i])

    def test_predictions_match_reference_backend(self, rng):
        net = performance_network(
            [("conv", 4, 3, 1, 1), ("flatten",), ("linear", 5)],
            input_shape=(1, 6, 6), num_steps=3,
            seed=int(rng.integers(1 << 16)))
        snn = SNNModel(net)
        images = rng.random((3,) + net.input_shape)
        ref = Accelerator(AcceleratorConfig.for_network(net))
        ref.deploy(snn)
        vec = Accelerator(AcceleratorConfig.for_network(net),
                          backend="vectorized")
        vec.deploy(snn)
        ref_preds, _ = ref.run(images)
        vec_preds, _ = vec.run(images)
        np.testing.assert_array_equal(ref_preds, vec_preds)
        np.testing.assert_array_equal(vec_preds, snn.predict(images))

    def test_bad_batch_shape_raises(self, rng):
        net = performance_network(
            [("conv", 2, 3, 1, 1), ("flatten",), ("linear", 3)],
            input_shape=(1, 6, 6), num_steps=3, seed=0)
        accelerator = Accelerator(AcceleratorConfig.for_network(net),
                                  backend="vectorized")
        accelerator.deploy(SNNModel(net))
        with pytest.raises(ShapeError):
            accelerator.run(np.zeros((1, 6, 6)))
        with pytest.raises(ShapeError):
            accelerator.run(np.zeros((1, 1, 5, 5)))
        with pytest.raises(ShapeError):
            accelerator.run(np.zeros((0, 1, 6, 6)))


class TestEngineRegistry:
    def test_builtin_backends_registered(self):
        assert "reference" in available_backends()
        assert "vectorized" in available_backends()

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigurationError):
            Accelerator(AcceleratorConfig(), backend="warp-drive")

    def test_abstract_engine_rejected(self):
        from repro.core import ExecutionEngine
        with pytest.raises(ConfigurationError):
            Accelerator(AcceleratorConfig(), backend=ExecutionEngine)

    def test_engine_class_accepted(self):
        accelerator = Accelerator(AcceleratorConfig(),
                                  backend=VectorizedEngine)
        assert accelerator.backend == "vectorized"

    def test_create_engine_from_compiled(self):
        net = performance_network(
            [("conv", 2, 3, 1, 1), ("flatten",), ("linear", 3)],
            input_shape=(1, 6, 6), num_steps=3, seed=1)
        compiled = compile_network(
            net, AcceleratorConfig.for_network(net))
        engine = create_engine("vectorized", compiled)
        assert isinstance(engine, VectorizedEngine)
        assert isinstance(create_engine(ReferenceEngine, compiled),
                          ReferenceEngine)

    def test_controller_exposes_backend(self):
        net = performance_network(
            [("conv", 2, 3, 1, 1), ("flatten",), ("linear", 3)],
            input_shape=(1, 6, 6), num_steps=3, seed=1)
        compiled = compile_network(
            net, AcceleratorConfig.for_network(net))
        controller = Controller(compiled, backend="vectorized")
        assert controller.backend == "vectorized"

    def test_use_backend_switches_engine(self, rng):
        net = performance_network(
            [("conv", 2, 3, 1, 1), ("flatten",), ("linear", 3)],
            input_shape=(1, 6, 6), num_steps=3,
            seed=int(rng.integers(1 << 16)))
        snn = SNNModel(net)
        accelerator = Accelerator(AcceleratorConfig.for_network(net))
        accelerator.deploy(snn)
        image = rng.random(net.input_shape)
        ref_logits, ref_trace = accelerator.run_image(image)
        accelerator.use_backend("vectorized")
        assert accelerator.backend == "vectorized"
        vec_logits, vec_trace = accelerator.run_image(image)
        np.testing.assert_array_equal(ref_logits, vec_logits)
        assert_traces_identical(ref_trace, vec_trace)

"""Tests for weight quantization and activation calibration."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.encoding import (
    ActivationCalibrator,
    quantize_weights,
    weight_int_range,
)
from repro.errors import QuantizationError


class TestWeightIntRange:
    def test_three_bits_symmetric(self):
        assert weight_int_range(3) == (-3, 3)

    def test_eight_bits(self):
        assert weight_int_range(8) == (-127, 127)

    def test_rejects_one_bit(self):
        with pytest.raises(QuantizationError):
            weight_int_range(1)


class TestQuantizeWeights:
    def test_integers_in_range(self):
        rng = np.random.default_rng(0)
        w = rng.normal(size=(8, 4, 3, 3))
        q = quantize_weights(w, 3)
        assert q.values.min() >= -3 and q.values.max() <= 3

    def test_per_channel_scales_shape(self):
        w = np.random.default_rng(1).normal(size=(6, 10))
        q = quantize_weights(w, 4)
        assert q.scales.shape == (6,)
        assert q.num_output_channels == 6

    def test_channel_max_maps_to_top_integer(self):
        w = np.zeros((2, 4))
        w[0, 1] = 0.9
        w[1, 2] = -0.3
        q = quantize_weights(w, 3)
        assert q.values[0, 1] == 3
        assert q.values[1, 2] == -3

    def test_zero_channel_keeps_unit_scale(self):
        w = np.zeros((3, 5))
        w[0, 0] = 1.0
        q = quantize_weights(w, 3)
        assert q.scales[1] == 1.0
        assert np.all(q.values[1] == 0)

    def test_per_tensor_mode_single_scale(self):
        w = np.random.default_rng(2).normal(size=(4, 4))
        q = quantize_weights(w, 5, per_channel=False)
        assert np.allclose(q.scales, q.scales[0])

    def test_rejects_one_dim(self):
        with pytest.raises(QuantizationError):
            quantize_weights(np.ones(5), 3)

    @given(st.integers(min_value=2, max_value=8))
    @settings(max_examples=20, deadline=None)
    def test_dequantize_error_bounded(self, bits):
        rng = np.random.default_rng(bits)
        w = rng.normal(size=(5, 7))
        q = quantize_weights(w, bits)
        top = (1 << (bits - 1)) - 1
        err = np.abs(q.dequantize() - w)
        per_channel_bound = np.abs(w).max(axis=1) / top
        assert np.all(err <= per_channel_bound[:, None] / 2 + 1e-12)

    def test_quantization_idempotent(self):
        """Quantizing already-quantized weights changes nothing."""
        rng = np.random.default_rng(5)
        w = rng.normal(size=(4, 6))
        q1 = quantize_weights(w, 3)
        q2 = quantize_weights(q1.dequantize(), 3)
        np.testing.assert_array_equal(q1.values, q2.values)


class TestActivationCalibrator:
    def test_scale_is_percentile(self):
        cal = ActivationCalibrator(percentile=100.0)
        cal.observe(np.linspace(0, 2.0, 101))
        assert cal.scale() == pytest.approx(2.0)

    def test_percentile_clips_outliers(self):
        cal = ActivationCalibrator(percentile=99.0)
        data = np.concatenate([np.ones(990), np.full(10, 100.0)])
        cal.observe(data)
        assert cal.scale() < 100.0

    def test_accumulates_batches(self):
        cal = ActivationCalibrator(percentile=100.0)
        cal.observe(np.array([0.5]))
        cal.observe(np.array([1.5]))
        assert cal.scale() == pytest.approx(1.5)
        assert cal.num_observed == 2

    def test_unobserved_raises(self):
        with pytest.raises(QuantizationError):
            ActivationCalibrator().scale()

    def test_empty_observation_ignored(self):
        cal = ActivationCalibrator()
        cal.observe(np.array([]))
        with pytest.raises(QuantizationError):
            cal.scale()

    def test_scale_never_zero(self):
        cal = ActivationCalibrator()
        cal.observe(np.zeros(100))
        assert cal.scale() > 0

    def test_invalid_percentile_rejected(self):
        with pytest.raises(QuantizationError):
            ActivationCalibrator(percentile=0.0)
        with pytest.raises(QuantizationError):
            ActivationCalibrator(percentile=101.0)

    def test_reservoir_bounds_memory(self):
        cal = ActivationCalibrator()
        cal.observe(np.ones(1 << 18))
        assert cal.num_observed <= (1 << 16) + 1

"""Tests for the command-line interface."""

import pytest

from repro import cli
from repro.harness import ArtifactStore, ExperimentRunner, ExperimentSettings


@pytest.fixture()
def tiny_runner(tmp_path, monkeypatch):
    """Patch the CLI to use a smoke-scale runner with isolated artifacts."""
    settings = ExperimentSettings(
        train_count=250, test_count=60, calibration_count=48,
        base_epochs=1, t3_epochs=1, fast=True)
    runner = ExperimentRunner(settings=settings,
                              store=ArtifactStore(tmp_path))
    monkeypatch.setattr(cli, "ExperimentRunner", lambda **kwargs: runner)
    return runner


class TestCliDispatch:
    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            cli.main(["rocket-science"])

    def test_requires_argument(self):
        with pytest.raises(SystemExit):
            cli.main([])

    def test_figures_path(self, tiny_runner, capsys):
        assert cli.main(["figures"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 1" in out
        assert "Fig. 2" in out
        assert "conv unit 0" in out

    def test_table2_path(self, tiny_runner, capsys):
        assert cli.main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "Table II" in out
        assert "paper/ours" in out

    def test_table3_without_vgg(self, tiny_runner, capsys):
        assert cli.main(["table3", "--no-vgg"]) == 0
        out = capsys.readouterr().out
        assert "Ju et al." in out
        assert "VGG-11" not in out

    def test_dataflow_path(self, tiny_runner, capsys):
        assert cli.main(["dataflow"]) == 0
        out = capsys.readouterr().out
        assert "row-based" in out
        assert "naive sliding window" in out

    def test_dataflow_vectorized_backend(self, tiny_runner, capsys):
        tiny_runner.backend = "vectorized"
        assert cli.main(["dataflow", "--backend", "vectorized"]) == 0
        out = capsys.readouterr().out
        assert "row-based" in out

    def test_unknown_backend_rejected(self):
        with pytest.raises(SystemExit):
            cli.main(["figures", "--backend", "warp-drive"])

"""Tests for the command-line interface."""

import pytest

from repro import cli
from repro.harness import ArtifactStore, ExperimentRunner, ExperimentSettings


@pytest.fixture()
def tiny_runner(tmp_path, monkeypatch):
    """Patch the CLI to use a smoke-scale runner with isolated artifacts.

    The CLI's constructor kwargs (backend, sweep_workers, ...) are
    applied onto the shared runner so the argument wiring in
    ``cli.main`` is actually exercised.
    """
    settings = ExperimentSettings(
        train_count=250, test_count=60, calibration_count=48,
        base_epochs=1, t3_epochs=1, fast=True)
    runner = ExperimentRunner(settings=settings,
                              store=ArtifactStore(tmp_path))

    def make_runner(**kwargs):
        for name, value in kwargs.items():
            assert hasattr(runner, name), name
            setattr(runner, name, value)
        return runner

    monkeypatch.setattr(cli, "ExperimentRunner", make_runner)
    return runner


class TestCliDispatch:
    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            cli.main(["rocket-science"])

    def test_requires_argument(self):
        with pytest.raises(SystemExit):
            cli.main([])

    def test_figures_path(self, tiny_runner, capsys):
        assert cli.main(["figures"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 1" in out
        assert "Fig. 2" in out
        assert "conv unit 0" in out

    def test_table2_path(self, tiny_runner, capsys):
        assert cli.main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "Table II" in out
        assert "paper/ours" in out

    def test_table3_without_vgg(self, tiny_runner, capsys):
        assert cli.main(["table3", "--no-vgg"]) == 0
        out = capsys.readouterr().out
        assert "Ju et al." in out
        assert "VGG-11" not in out

    def test_dataflow_path(self, tiny_runner, capsys):
        assert cli.main(["dataflow"]) == 0
        out = capsys.readouterr().out
        assert "row-based" in out
        assert "naive sliding window" in out

    def test_dataflow_vectorized_backend(self, tiny_runner, capsys):
        tiny_runner.backend = "vectorized"
        assert cli.main(["dataflow", "--backend", "vectorized"]) == 0
        out = capsys.readouterr().out
        assert "row-based" in out

    def test_sweep_path(self, tiny_runner, capsys):
        assert cli.main(["sweep", "--workers", "2", "--shard-size", "16",
                         "--steps", "3"]) == 0
        assert tiny_runner.sweep_workers == 2
        assert tiny_runner.sweep_shard_size == 16
        out = capsys.readouterr().out
        assert "Accuracy sweep" in out
        assert "2 worker(s)" in out

    def test_sweep_bad_workers_rejected(self):
        with pytest.raises(SystemExit):
            cli.main(["sweep", "--workers", "0"])
        with pytest.raises(SystemExit):
            cli.main(["sweep", "--shard-size", "-4"])

    def test_sweep_duplicate_steps_deduplicated(self, tiny_runner, capsys):
        assert cli.main(["sweep", "--steps", "3,3"]) == 0
        out = capsys.readouterr().out
        assert out.count("\n3 |") == 2  # one row per requested step

    def test_sweep_bad_steps_rejected(self, tiny_runner):
        with pytest.raises(SystemExit):
            cli.main(["sweep", "--steps", "three"])
        with pytest.raises(SystemExit):
            cli.main(["sweep", "--steps", ","])
        with pytest.raises(SystemExit):
            cli.main(["sweep", "--steps", "0"])
        with pytest.raises(SystemExit):
            cli.main(["sweep", "--steps", "-3"])

    def test_unknown_backend_rejected(self):
        with pytest.raises(SystemExit):
            cli.main(["figures", "--backend", "warp-drive"])


class TestCliServing:
    def test_loadgen_in_process(self, tiny_runner, capsys):
        """Serve smoke: N requests in-process, predictions verified."""
        assert cli.main(["loadgen", "--requests", "24", "--rate", "300",
                         "--max-batch", "8"]) == 0
        out = capsys.readouterr().out
        assert "Serving report" in out
        assert "all 24 served predictions match" in out
        assert tiny_runner.store.has_result("serve_loadgen_greedy")
        payload = tiny_runner.store.load_result("serve_loadgen_greedy")
        assert payload["snapshot"]["completed"] == 24
        assert payload["load"]["offered_rps"] == 300.0

    def test_loadgen_deadline_policy(self, tiny_runner, capsys):
        assert cli.main(["loadgen", "--requests", "16", "--rate", "200",
                         "--policy", "deadline", "--slo-ms", "500"]) == 0
        out = capsys.readouterr().out
        assert "slo_ms=500" in out
        assert tiny_runner.store.has_result("serve_loadgen_deadline")

    def test_unknown_policy_rejected(self):
        with pytest.raises(SystemExit):
            cli.main(["loadgen", "--policy", "fifo-ish"])

    def test_bad_serving_knobs_rejected(self):
        with pytest.raises(SystemExit):
            cli.main(["loadgen", "--max-batch", "0"])
        with pytest.raises(SystemExit):
            cli.main(["serve", "--engines", "-1"])

"""Tests for the synthetic dataset generators."""

import numpy as np
import pytest

from repro.data import (
    DIGIT_STROKES,
    Dataset,
    SyntheticCIFAR100,
    SyntheticMNIST,
    generate_cifar100,
    generate_mnist,
    rasterize_strokes,
    render_digit,
)
from repro.errors import ShapeError


class TestStrokes:
    def test_all_ten_digits_defined(self):
        assert sorted(DIGIT_STROKES) == list(range(10))

    def test_rasterize_range_and_shape(self):
        img = rasterize_strokes(DIGIT_STROKES[3], size=28)
        assert img.shape == (28, 28)
        assert 0.0 <= img.min() and img.max() <= 1.0
        assert img.max() > 0.5  # something was actually drawn

    def test_render_digit_deterministic_given_rng(self):
        a = render_digit(7, np.random.default_rng(5))
        b = render_digit(7, np.random.default_rng(5))
        np.testing.assert_array_equal(a, b)

    def test_render_digit_varies_across_draws(self):
        rng = np.random.default_rng(0)
        a = render_digit(2, rng)
        b = render_digit(2, rng)
        assert not np.array_equal(a, b)

    def test_digits_are_mutually_distinct(self):
        """Mean images of different digits should differ clearly."""
        rng = np.random.default_rng(0)
        means = [np.mean([render_digit(d, rng) for _ in range(5)], axis=0)
                 for d in range(10)]
        for i in range(10):
            for j in range(i + 1, 10):
                diff = np.abs(means[i] - means[j]).mean()
                assert diff > 0.01, f"digits {i} and {j} look identical"

    def test_invalid_digit_rejected(self):
        with pytest.raises(ShapeError):
            render_digit(10, np.random.default_rng(0))

    def test_canvas_too_small_rejected(self):
        with pytest.raises(ShapeError):
            rasterize_strokes(DIGIT_STROKES[0], size=4)


class TestDatasetContainer:
    def test_validation(self):
        with pytest.raises(ShapeError):
            Dataset(np.zeros((2, 1, 4)), np.zeros(2, dtype=int), 10)
        with pytest.raises(ShapeError):
            Dataset(np.zeros((2, 1, 4, 4)), np.zeros(3, dtype=int), 10)
        with pytest.raises(ShapeError):
            Dataset(np.zeros((2, 1, 4, 4)), np.array([0, 10]), 10)

    def test_split_and_subset(self):
        data = Dataset(np.zeros((10, 1, 2, 2)), np.arange(10) % 3, 3)
        head, tail = data.split(6)
        assert len(head) == 6 and len(tail) == 4
        assert len(data.subset(4)) == 4
        with pytest.raises(ShapeError):
            data.split(10)

    def test_shuffled_preserves_pairs(self):
        images = np.arange(8).reshape(8, 1, 1, 1).astype(float) / 10
        labels = np.arange(8) % 4
        data = Dataset(images, labels, 4)
        shuffled = data.shuffled(seed=1)
        for img, lab in zip(shuffled.images, shuffled.labels):
            original = int(round(img.flatten()[0] * 10))
            assert labels[original] == lab

    def test_batches_cover_everything(self):
        data = Dataset(np.zeros((10, 1, 2, 2)), np.zeros(10, dtype=int), 2)
        seen = sum(len(lbl) for _, lbl in data.batches(3))
        assert seen == 10

    def test_class_counts(self):
        data = Dataset(np.zeros((6, 1, 2, 2)), np.array([0, 0, 1, 2, 2, 2]),
                       4)
        np.testing.assert_array_equal(data.class_counts(), [2, 1, 3, 0])


class TestSyntheticMNIST:
    def test_shapes_and_range(self):
        train = SyntheticMNIST(image_size=32, seed=0).generate(50)
        assert train.images.shape == (50, 1, 32, 32)
        assert train.images.min() >= 0 and train.images.max() <= 1

    def test_28px_variant(self):
        data = SyntheticMNIST(image_size=28, seed=0).generate(10)
        assert data.image_shape == (1, 28, 28)

    def test_padding_leaves_border_empty(self):
        data = SyntheticMNIST(image_size=32, seed=0).generate(10)
        border = np.concatenate([
            data.images[:, 0, :2, :].ravel(),
            data.images[:, 0, -2:, :].ravel()])
        assert border.max() == 0

    def test_balanced_classes(self):
        data = SyntheticMNIST(seed=1).generate(100)
        counts = data.class_counts()
        assert counts.min() == counts.max() == 10

    def test_deterministic_given_seed(self):
        a = SyntheticMNIST(seed=9).generate(12)
        b = SyntheticMNIST(seed=9).generate(12)
        np.testing.assert_array_equal(a.images, b.images)
        np.testing.assert_array_equal(a.labels, b.labels)

    def test_splits_do_not_overlap(self):
        train, test = generate_mnist(train_count=30, test_count=10)
        assert len(train) == 30 and len(test) == 10

    def test_invalid_size_rejected(self):
        with pytest.raises(ShapeError):
            SyntheticMNIST(image_size=20)


class TestSyntheticCIFAR100:
    def test_shapes_and_classes(self):
        data = SyntheticCIFAR100(seed=0).generate(200)
        assert data.images.shape == (200, 3, 32, 32)
        assert data.num_classes == 100

    def test_class_signature_bijective(self):
        signatures = {SyntheticCIFAR100.class_signature(c)
                      for c in range(100)}
        assert len(signatures) == 100

    def test_deterministic(self):
        a = SyntheticCIFAR100(seed=4).generate(20)
        b = SyntheticCIFAR100(seed=4).generate(20)
        np.testing.assert_array_equal(a.images, b.images)

    def test_noise_level_controls_difficulty(self):
        """Same class renders should be more similar at low noise."""
        clean = SyntheticCIFAR100(seed=0, noise_level=0.0)
        noisy = SyntheticCIFAR100(seed=0, noise_level=2.0)

        def intra_class_spread(maker):
            data = maker.generate(400)  # 4 instances per class
            img0 = data.images[data.labels == 0]
            assert len(img0) >= 2
            return np.var(img0, axis=0).mean()

        assert intra_class_spread(noisy) > intra_class_spread(clean)

    def test_invalid_label_rejected(self):
        with pytest.raises(ShapeError):
            SyntheticCIFAR100.class_signature(100)

    def test_generate_splits(self):
        train, test = generate_cifar100(train_count=120, test_count=40)
        assert len(train) == 120 and len(test) == 40
        assert train.num_classes == test.num_classes == 100

"""Tests for the baselines package and the experiment harness scaffolding."""

import numpy as np
import pytest

from repro.baselines import (
    FANG_2020,
    JU_2020,
    TABLE_III,
    AccuracyCurve,
    DataflowSummary,
    encoding_advantage,
    naive_conv_traffic,
    naive_network_traffic,
)
from repro.core import AcceleratorConfig, compile_network
from repro.core.stats import MemoryTraffic
from repro.harness import (
    ArtifactStore,
    Table,
    render_conv_unit,
    render_overview,
)
from repro.models import performance_network
from repro.nn import Linear, ReLU, Sequential
from repro.snn import SNNModel


class TestPublishedNumbers:
    def test_table3_rows_as_printed(self):
        assert JU_2020.latency_us == 6110.0
        assert JU_2020.throughput_fps == 164.0
        assert FANG_2020.luts == 156_000
        assert FANG_2020.ffs == 233_000
        assert len(TABLE_III) == 5

    def test_energy_derived(self):
        assert JU_2020.energy_per_frame_mj == pytest.approx(
            4.6 * 6110.0 * 1e-3)


class TestNaiveDataflow:
    def _net(self):
        return performance_network(
            [("conv", 4, 3, 1, 0), ("flatten",), ("linear", 4)],
            input_shape=(2, 8, 8), num_steps=3)

    def test_window_traffic_formula(self):
        spec = self._net().conv_layers()[0]
        traffic = naive_conv_traffic(spec, num_steps=3)
        windows = 4 * 6 * 6 * 2 * 3
        assert traffic.activation_read_bits == windows * 9
        assert traffic.kernel_read_values == windows * 9

    def test_network_totals(self):
        net = self._net()
        total = naive_network_traffic(net)
        assert total.activation_read_bits == naive_conv_traffic(
            net.conv_layers()[0], 3).activation_read_bits

    def test_rowwise_beats_naive_on_real_run(self):
        """The actual measured traffic of the functional simulator must be
        well below the naive sliding-window traffic (the paper's claim)."""
        from repro.core import Controller
        net = self._net()
        compiled = compile_network(
            net, AcceleratorConfig.for_network(net))
        controller = Controller(compiled)
        _, trace = controller.run_image(
            np.random.default_rng(0).random(net.input_shape))
        conv_traffic = MemoryTraffic()
        for layer in trace.layers:
            if layer.kind == "conv":
                conv_traffic.merge(layer.traffic)
        summary = DataflowSummary(rowwise=conv_traffic,
                                  naive=naive_network_traffic(net))
        assert summary.activation_read_reduction > 3.0
        assert summary.kernel_read_reduction > 1.0


class TestEncodingAdvantage:
    def test_reproduces_paper_arithmetic(self):
        """Radix saturating at T=6 vs rate reaching parity at T=10 is the
        paper's ~40% efficiency improvement."""
        radix = AccuracyCurve("radix", (3, 4, 5, 6), (0.985, 0.991, 0.992,
                                                      0.9926))
        rate = AccuracyCurve("rate", (2, 4, 6, 8, 10, 12),
                             (0.5, 0.8, 0.95, 0.98, 0.992, 0.993))
        comparison = encoding_advantage(radix, rate)
        assert comparison.radix_steps == 4
        assert comparison.rate_steps == 10
        assert comparison.efficiency_gain == pytest.approx(0.6)

    def test_unreachable_target(self):
        radix = AccuracyCurve("radix", (3,), (0.99,))
        rate = AccuracyCurve("rate", (2, 4), (0.3, 0.4))
        comparison = encoding_advantage(radix, rate)
        assert comparison.rate_steps is None
        assert comparison.efficiency_gain is None

    def test_curve_validation(self):
        with pytest.raises(ValueError):
            AccuracyCurve("x", (1, 2), (0.5,))


class TestTableRenderer:
    def test_renders_aligned(self):
        table = Table("Demo", ["a", "column_b"])
        table.add_row(1, 2.5)
        table.add_row("long-cell", 12345.0)
        text = table.render()
        lines = text.splitlines()
        assert lines[0] == "Demo"
        assert all(len(l) == len(lines[2]) for l in lines[2:])
        assert "12,345" in text

    def test_row_width_validation(self):
        table = Table("Demo", ["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(1)


class TestDiagrams:
    def test_overview_reflects_config(self):
        config = AcceleratorConfig().with_units(3)
        text = render_overview(config)
        assert "conv unit 2" in text
        assert "30x5 adders" in text
        assert "100 MHz" in text

    def test_overview_with_compiled_model(self):
        net = performance_network(
            [("conv", 2, 3, 1, 0), ("flatten",), ("linear", 2)],
            (1, 8, 8), num_steps=3)
        compiled = compile_network(net, AcceleratorConfig.for_network(net))
        text = render_overview(compiled.config, compiled)
        assert "1 conv + 1 linear" in text
        assert "internal BRAM" in text

    def test_conv_unit_diagram(self):
        text = render_conv_unit(AcceleratorConfig(), kernel_rows=3,
                                stride=2)
        assert "kernel row 2" in text
        assert "stride=2" in text
        assert "acc << 1" in text


class TestArtifactStore:
    def test_model_roundtrip(self, tmp_path):
        store = ArtifactStore(tmp_path)
        rng = np.random.default_rng(0)
        model = Sequential([Linear(4, 3, rng=rng), ReLU(),
                            Linear(3, 2, rng=rng)])
        x = rng.normal(size=(2, 4))
        expected = model.forward(x)
        store.save_model("m1", model)
        assert store.has_model("m1")
        fresh = Sequential([Linear(4, 3), ReLU(), Linear(3, 2)])
        store.load_model("m1", fresh)
        np.testing.assert_allclose(fresh.forward(x), expected)

    def test_qat_scales_roundtrip(self, tmp_path):
        from repro.nn.qat import add_activation_quantization
        store = ArtifactStore(tmp_path)
        model = add_activation_quantization(
            Sequential([Linear(4, 3), ReLU(), Linear(3, 2)]), num_steps=3)
        model.layers[2].scale = 1.25
        store.save_model("q1", model)
        fresh = add_activation_quantization(
            Sequential([Linear(4, 3), ReLU(), Linear(3, 2)]), num_steps=3)
        store.load_model("q1", fresh)
        assert fresh.layers[2].scale == 1.25

    def test_result_roundtrip(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.save_result("r1", {"accuracy": np.float64(0.5),
                                 "counts": np.array([1, 2])})
        assert store.has_result("r1")
        loaded = store.load_result("r1")
        assert loaded["accuracy"] == 0.5
        assert loaded["counts"] == [1, 2]

    def test_missing_artifacts(self, tmp_path):
        store = ArtifactStore(tmp_path)
        assert not store.has_model("nope")
        assert not store.has_result("nope")


class TestSpikeStatsOnRealNetwork:
    def test_geometry_network_runs_spiking(self):
        net = performance_network(
            [("conv", 3, 3, 1, 0), ("pool", 2), ("flatten",),
             ("linear", 4)],
            (1, 10, 10), num_steps=3, seed=2)
        snn = SNNModel(net)
        images = np.random.default_rng(0).random((2, 1, 10, 10))
        ref = snn.forward_ints(images)
        spikes, stats = snn.forward_spikes(images, collect_stats=True)
        np.testing.assert_array_equal(ref, spikes)
        assert stats.total_spikes > 0

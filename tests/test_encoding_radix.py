"""Tests for radix encoding — the reference semantics of the whole repo."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.encoding import radix
from repro.encoding.spike_train import SpikeTrain
from repro.errors import EncodingError


class TestStepWeight:
    def test_msb_first(self):
        assert radix.step_weight(0, 4) == 8
        assert radix.step_weight(3, 4) == 1

    def test_weights_halve_each_step(self):
        for t in range(5):
            assert radix.step_weight(t, 6) == 2 * radix.step_weight(t + 1, 6)

    def test_out_of_range_step_rejected(self):
        with pytest.raises(EncodingError):
            radix.step_weight(4, 4)
        with pytest.raises(EncodingError):
            radix.step_weight(-1, 4)


class TestMaxInt:
    def test_values(self):
        assert radix.max_int(1) == 1
        assert radix.max_int(3) == 7
        assert radix.max_int(8) == 255

    def test_invalid_length_rejected(self):
        with pytest.raises(EncodingError):
            radix.max_int(0)
        with pytest.raises(EncodingError):
            radix.max_int(31)


class TestEncodeInts:
    def test_known_pattern(self):
        train = radix.encode_ints(np.array([5]), 3)  # 5 = 0b101
        assert train.bits[:, 0].tolist() == [1, 0, 1]

    def test_zero_encodes_to_silence(self):
        train = radix.encode_ints(np.array([0, 0]), 4)
        assert train.num_spikes == 0

    def test_max_value_spikes_everywhere(self):
        train = radix.encode_ints(np.array([15]), 4)
        assert train.num_spikes == 4

    def test_preserves_payload_shape(self):
        values = np.arange(12).reshape(3, 4)
        train = radix.encode_ints(values, 4)
        assert train.payload_shape == (3, 4)
        assert train.num_steps == 4

    def test_rejects_negative(self):
        with pytest.raises(EncodingError):
            radix.encode_ints(np.array([-1]), 3)

    def test_rejects_overflow(self):
        with pytest.raises(EncodingError):
            radix.encode_ints(np.array([8]), 3)

    def test_rejects_float_input(self):
        with pytest.raises(EncodingError):
            radix.encode_ints(np.array([0.5]), 3)

    @given(st.integers(min_value=1, max_value=12),
           st.integers(min_value=0, max_value=4000))
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_scalar(self, num_steps, value):
        value = value % (1 << num_steps)
        train = radix.encode_ints(np.array([value]), num_steps)
        assert radix.decode_ints(train)[0] == value

    @given(st.integers(min_value=1, max_value=10))
    @settings(max_examples=20, deadline=None)
    def test_roundtrip_all_values(self, num_steps):
        values = np.arange(1 << num_steps)
        train = radix.encode_ints(values, num_steps)
        np.testing.assert_array_equal(radix.decode_ints(train), values)

    def test_spike_count_is_popcount(self):
        values = np.array([0b1011, 0b0001, 0b1111])
        train = radix.encode_ints(values, 4)
        assert train.num_spikes == 3 + 1 + 4


class TestQuantizeReal:
    def test_grid_floor(self):
        q = radix.quantize_real(np.array([0.0, 0.49, 0.5, 0.999]), 1)
        np.testing.assert_array_equal(q, [0, 0, 1, 1])

    def test_clips_above_one(self):
        q = radix.quantize_real(np.array([1.0, 2.5]), 3)
        np.testing.assert_array_equal(q, [7, 7])

    def test_clips_below_zero(self):
        q = radix.quantize_real(np.array([-0.3]), 3)
        assert q[0] == 0

    @given(st.floats(min_value=0.0, max_value=0.999999),
           st.integers(min_value=1, max_value=16))
    @settings(max_examples=80, deadline=None)
    def test_quantization_error_bounded(self, value, num_steps):
        q = radix.quantize_real(np.array([value]), num_steps)[0]
        reconstructed = q / (1 << num_steps)
        assert 0 <= value - reconstructed < 1.0 / (1 << num_steps) + 1e-12


class TestEncodeDecodeReal:
    def test_decode_real_on_grid(self):
        values = np.array([0.0, 0.25, 0.5, 0.75])
        train = radix.encode_real(values, 2)
        np.testing.assert_allclose(radix.decode_real(train), values)

    @given(st.lists(st.floats(min_value=0.0, max_value=0.999),
                    min_size=1, max_size=16),
           st.integers(min_value=2, max_value=10))
    @settings(max_examples=50, deadline=None)
    def test_decode_never_exceeds_input(self, values, num_steps):
        arr = np.array(values)
        decoded = radix.decode_real(radix.encode_real(arr, num_steps))
        assert np.all(decoded <= arr + 1e-12)
        assert np.all(arr - decoded < 1.0 / (1 << num_steps) + 1e-12)


class TestSpikeTrainContainer:
    def test_rejects_non_binary(self):
        with pytest.raises(EncodingError):
            SpikeTrain(np.full((2, 3), 2, dtype=np.uint8))

    def test_rejects_missing_time_axis(self):
        with pytest.raises(Exception):
            SpikeTrain(np.zeros(5, dtype=np.uint8))

    def test_step_access_and_iteration(self):
        train = radix.encode_ints(np.array([6]), 3)  # 0b110
        assert train.step(0)[0] == 1
        assert train.step(2)[0] == 0
        assert len(list(train)) == 3

    def test_step_out_of_range(self):
        train = radix.encode_ints(np.array([1]), 3)
        with pytest.raises(EncodingError):
            train.step(3)

    def test_spike_rate(self):
        train = radix.encode_ints(np.array([7]), 3)
        assert train.spike_rate() == 1.0

    def test_concatenate_channels(self):
        a = radix.encode_ints(np.arange(4).reshape(2, 2) % 4, 2)
        b = radix.encode_ints(np.arange(4).reshape(2, 2) % 4, 2)
        merged = a.concatenate_channels(b)
        assert merged.payload_shape == (4, 2)

    def test_concatenate_length_mismatch_rejected(self):
        a = radix.encode_ints(np.zeros((2, 2), dtype=np.int64), 2)
        b = radix.encode_ints(np.zeros((2, 2), dtype=np.int64), 3)
        with pytest.raises(Exception):
            a.concatenate_channels(b)

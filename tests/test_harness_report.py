"""Tests for the experiment-settings plumbing and the markdown report."""

import numpy as np
import pytest

from repro.harness import (
    ArtifactStore,
    ExperimentRunner,
    ExperimentSettings,
    write_report,
)
from repro.harness.experiments import PAPER_TABLE1, PAPER_TABLE2
from repro.harness.report_md import _md_table, build_report


class TestExperimentSettings:
    def test_paper_constants_match_tables(self):
        assert PAPER_TABLE1[3] == (98.57, 648)
        assert PAPER_TABLE1[6] == (99.26, 1271)
        assert PAPER_TABLE2[1][0] == 1063
        assert PAPER_TABLE2[8][2] == 42_000

    def test_fast_env_settings(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAST", "1")
        settings = ExperimentSettings.from_env()
        assert settings.fast
        assert settings.train_count < 1000

    def test_full_env_settings(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAST", raising=False)
        settings = ExperimentSettings.from_env()
        assert not settings.fast
        assert settings.train_count == 5000

    def test_key_suffix_separates_scales(self):
        full = ExperimentSettings()
        fast = ExperimentSettings(train_count=700, fast=True)
        assert full.key_suffix() != fast.key_suffix()

    def test_runner_dataset_shapes(self, tmp_path):
        settings = ExperimentSettings(train_count=60, test_count=20,
                                      fast=True)
        runner = ExperimentRunner(settings=settings,
                                  store=ArtifactStore(tmp_path))
        train, test = runner.mnist()
        assert len(train) == 60 and len(test) == 20
        assert train.image_shape == (1, 32, 32)
        train28, _ = runner.mnist28()
        assert train28.image_shape == (1, 28, 28)

    def test_cifar_respects_noise_setting(self, tmp_path):
        settings = ExperimentSettings(vgg_train_count=30, vgg_test_count=10,
                                      cifar_noise=0.5, fast=True)
        runner = ExperimentRunner(settings=settings,
                                  store=ArtifactStore(tmp_path))
        train, test = runner.cifar()
        assert train.image_shape == (3, 32, 32)
        assert train.num_classes == 100


class TestMarkdownTable:
    def test_md_table_structure(self):
        text = _md_table(["a", "b"], [["1", "2"], ["3", "4"]])
        lines = text.splitlines()
        assert lines[0] == "| a | b |"
        assert lines[1] == "|---|---|"
        assert len(lines) == 4

    @pytest.mark.slow
    def test_full_report_smoke(self, tmp_path):
        """Build the whole report at smoke scale (trains tiny models)."""
        settings = ExperimentSettings(
            train_count=300, test_count=80, calibration_count=48,
            base_epochs=1, t3_epochs=1, vgg_width=0.0625,
            vgg_train_count=200, vgg_test_count=50, vgg_epochs=1,
            fast=True)
        runner = ExperimentRunner(settings=settings,
                                  store=ArtifactStore(tmp_path))
        path = write_report(runner, tmp_path / "report.md",
                            include_vgg=False)
        text = path.read_text()
        assert "# Reproduction report" in text
        assert "Table I" in text and "Table III" in text
        assert "Dataflow ablation" in text
        assert "Ju et al. [12]" in text

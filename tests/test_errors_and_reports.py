"""Tests for the exception hierarchy and the report/summary surfaces."""

import pytest

from repro import errors
from repro.core import AcceleratorConfig, PerformanceReport
from repro.core.report import PerformanceReport as ReportAlias


class TestErrorHierarchy:
    def test_all_errors_derive_from_repro_error(self):
        subclasses = [
            errors.EncodingError, errors.QuantizationError,
            errors.ShapeError, errors.ConversionError,
            errors.CompilationError, errors.ConfigurationError,
            errors.CapacityError, errors.SimulationError,
        ]
        for cls in subclasses:
            assert issubclass(cls, errors.ReproError)

    def test_single_except_clause_catches_everything(self):
        """The documented contract: one except catches the library."""
        try:
            raise errors.CapacityError("buffer full")
        except errors.ReproError as caught:
            assert "buffer full" in str(caught)

    def test_repro_error_is_an_exception(self):
        assert issubclass(errors.ReproError, Exception)


class TestPerformanceReport:
    def _report(self, **overrides):
        fields = dict(
            model_name="demo", num_steps=4, num_conv_units=2,
            clock_mhz=100.0, cycles=50_000, latency_us=500.0,
            throughput_fps=2000.0, power_w=3.1,
            energy_per_frame_mj=1.55, luts=14_000, ffs=13_000,
            bram_blocks=12, bram_mbit=0.4, weights_on_chip=True,
            accuracy=0.987,
        )
        fields.update(overrides)
        return PerformanceReport(**fields)

    def test_summary_contains_all_headline_numbers(self):
        text = self._report().summary()
        assert "demo" in text
        assert "98.70%" in text
        assert "2,000" in text       # fps
        assert "14,000 LUTs" in text
        assert "on-chip" in text

    def test_summary_without_accuracy(self):
        text = self._report(accuracy=None).summary()
        assert "n/a" in text

    def test_summary_dram_wording(self):
        text = self._report(weights_on_chip=False).summary()
        assert "DRAM" in text

    def test_report_is_frozen(self):
        report = self._report()
        with pytest.raises(Exception):
            report.latency_us = 1.0

    def test_alias_is_same_class(self):
        assert ReportAlias is PerformanceReport


class TestConfigSummaryValues:
    def test_cycle_time(self):
        assert AcceleratorConfig(clock_mhz=125.0).cycle_time_us \
            == pytest.approx(0.008)

    def test_conv_unit_adder_count(self):
        config = AcceleratorConfig()
        assert config.conv_unit.num_adders == 150  # 30 x 5

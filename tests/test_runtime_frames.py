"""Zero-copy dispatch: binary frames, shm lanes, batched submission.

The contracts pinned here:

* the binary frame codec round-trips arrays bit-for-bit — raw or COO —
  and rejects every malformed or hostile frame with a typed
  :class:`~repro.errors.CodecError` *before* allocating a buffer for
  it (truncations, oversized length prefixes, dtype smuggling,
  out-of-bounds descriptors);
* framing is negotiated per connection and purely an optimization:
  binary lanes, forced-JSON lanes and mixed groups of both merge
  bit-identically (old peers simply never leave JSON);
* the shared-memory lane of :class:`ProcessWorker` is equally inert:
  ``REPRO_NO_SHM=1`` (the pickle path) produces the same bits;
* batched submission (``submit_many``/``execute_many``) returns the
  same results as item-at-a-time dispatch, with per-item task errors
  failing only their own future.
"""

import io
import json
import struct

import numpy as np
import pytest

from repro.errors import CodecError, DeploymentError
from repro.runtime import (
    ProcessWorker,
    RemoteWorker,
    ThreadWorker,
    WorkItem,
    WorkerGroup,
    WorkerServer,
    decode_frame,
    encode_frame,
    parse_frame_prefix,
    read_frame,
    shm_available,
)
from repro.runtime.codec import (
    FRAME_MAGIC,
    FRAME_PREFIX_LEN,
    MAX_BODY_BYTES,
    MAX_HEADER_BYTES,
)
from test_runtime import make_items, run_group, tiny_deployment

_PREFIX = struct.Struct("<4sIQ")


def frame_of(header: dict, body: bytes = b"") -> bytes:
    """Hand-assemble a frame from a raw header dict (for hostile tests)."""
    raw = json.dumps(header).encode()
    return _PREFIX.pack(FRAME_MAGIC, len(raw), len(body)) + raw + body


class TestBinaryFrameRoundtrip:
    def test_payload_and_arrays_bit_identical(self, rng):
        arrays = {
            "images": rng.random((3, 1, 8, 8)),
            "ids": np.arange(7, dtype=np.int32),
            "mask": rng.random(300) < 0.5,
        }
        payload = {"op": "execute", "nested": {"a": [1, 2.5, None]}}
        frame = encode_frame(payload, arrays)
        reader = io.BytesIO(frame)
        decoded_payload, decoded = read_frame(reader)
        assert decoded_payload == payload
        assert reader.read() == b""  # frame is self-delimiting
        for name, array in arrays.items():
            np.testing.assert_array_equal(decoded[name], array)
            assert decoded[name].dtype == array.dtype

    def test_raw_arrays_are_zero_copy_views(self, rng):
        array = rng.random((4, 4))
        frame = encode_frame({}, {"x": array})
        _, decoded = read_frame(io.BytesIO(frame))
        assert not decoded["x"].flags.writeable  # view into the body
        np.testing.assert_array_equal(decoded["x"], array)

    def test_sparse_arrays_ship_as_coo_and_rebuild_exactly(self, rng):
        dense = np.zeros(4096)
        hot = rng.choice(4096, size=64, replace=False)
        dense[hot] = rng.random(64)
        frame = encode_frame({}, {"x": dense})
        # The COO form must actually be smaller than the raw buffer.
        assert len(frame) < dense.nbytes
        header_len, _ = parse_frame_prefix(frame[:FRAME_PREFIX_LEN])
        header = json.loads(frame[FRAME_PREFIX_LEN:
                                  FRAME_PREFIX_LEN + header_len])
        assert header["arrays"]["x"]["enc"] == "coo"
        _, decoded = read_frame(io.BytesIO(frame))
        np.testing.assert_array_equal(decoded["x"], dense)

    def test_dense_and_tiny_arrays_stay_raw(self, rng):
        for array in (rng.random(4096),            # dense
                      np.zeros(16)):               # sparse but tiny
            frame = encode_frame({}, {"x": array})
            header_len, _ = parse_frame_prefix(frame[:FRAME_PREFIX_LEN])
            header = json.loads(frame[FRAME_PREFIX_LEN:
                                      FRAME_PREFIX_LEN + header_len])
            assert header["arrays"]["x"]["enc"] == "raw"

    def test_clean_eof_returns_none(self):
        assert read_frame(io.BytesIO(b"")) is None

    def test_object_arrays_refused_at_encode(self):
        with pytest.raises(CodecError, match="non-wire dtype"):
            encode_frame({}, {"x": np.array([object()])})


class TestHostileFrames:
    """Every malformed frame fails typed, before any allocation."""

    def test_truncated_prefix(self):
        with pytest.raises(CodecError, match="truncated frame prefix"):
            read_frame(io.BytesIO(b"RBF1\x01"))

    def test_bad_magic(self):
        prefix = _PREFIX.pack(b"EVIL", 2, 0)
        with pytest.raises(CodecError, match="bad frame magic"):
            parse_frame_prefix(prefix)

    def test_oversized_header_length(self):
        prefix = _PREFIX.pack(FRAME_MAGIC, MAX_HEADER_BYTES + 1, 0)
        with pytest.raises(CodecError, match="header length"):
            parse_frame_prefix(prefix)

    def test_oversized_body_length(self):
        """A 16-exabyte length prefix is rejected from 16 bytes alone."""
        prefix = _PREFIX.pack(FRAME_MAGIC, 2, 1 << 60)
        with pytest.raises(CodecError, match="body length"):
            parse_frame_prefix(prefix)
        assert MAX_BODY_BYTES < 1 << 60

    def test_truncated_header(self):
        frame = encode_frame({"op": "ping"}, {})
        with pytest.raises(CodecError, match="truncated in header"):
            read_frame(io.BytesIO(frame[:FRAME_PREFIX_LEN + 3]))

    def test_truncated_body(self, rng):
        frame = encode_frame({}, {"x": rng.random(32)})
        with pytest.raises(CodecError, match="truncated in body"):
            read_frame(io.BytesIO(frame[:-10]))

    def test_header_not_json(self):
        raw = b"\xff\xfenot json"
        frame = _PREFIX.pack(FRAME_MAGIC, len(raw), 0) + raw
        with pytest.raises(CodecError, match="not valid JSON"):
            read_frame(io.BytesIO(frame))

    def test_dtype_smuggling_rejected(self):
        """object/void/structured dtypes never reach np.dtype."""
        for dtype in ("object", "O", "V8", "float64,float64", "U16",
                      "complex128", None, 7):
            frame = frame_of(
                {"payload": {}, "arrays": {
                    "x": {"dtype": dtype, "shape": [1], "enc": "raw",
                          "offset": 0, "nbytes": 8}}},
                body=b"\0" * 8)
            with pytest.raises(CodecError, match="smuggles dtype"):
                read_frame(io.BytesIO(frame))

    def test_shape_byte_accounting_enforced(self):
        frame = frame_of(
            {"payload": {}, "arrays": {
                "x": {"dtype": "float64", "shape": [4], "enc": "raw",
                      "offset": 0, "nbytes": 8}}},  # 4 floats need 32
            body=b"\0" * 8)
        with pytest.raises(CodecError, match="holds 8 bytes"):
            read_frame(io.BytesIO(frame))

    def test_declared_elements_over_cap(self):
        frame = frame_of(
            {"payload": {}, "arrays": {
                "x": {"dtype": "float64", "shape": [1 << 40],
                      "enc": "raw", "offset": 0, "nbytes": 8}}},
            body=b"\0" * 8)
        with pytest.raises(CodecError, match="over cap"):
            read_frame(io.BytesIO(frame))

    def test_buffer_slice_outside_body(self):
        frame = frame_of(
            {"payload": {}, "arrays": {
                "x": {"dtype": "float64", "shape": [1], "enc": "raw",
                      "offset": 4096, "nbytes": 8}}},
            body=b"\0" * 8)
        with pytest.raises(CodecError, match="outside the"):
            read_frame(io.BytesIO(frame))

    def test_coo_index_out_of_range(self):
        indices = np.array([3], dtype=np.uint32).tobytes()
        values = np.array([1.0]).tobytes()
        frame = frame_of(
            {"payload": {}, "arrays": {
                "x": {"dtype": "float64", "shape": [2], "enc": "coo",
                      "count": 1, "index_offset": 0, "index_nbytes": 4,
                      "offset": 4, "nbytes": 8}}},
            body=indices + values)
        with pytest.raises(CodecError, match="index out of range"):
            read_frame(io.BytesIO(frame))

    def test_unknown_encoding(self):
        frame = frame_of(
            {"payload": {}, "arrays": {
                "x": {"dtype": "float64", "shape": [0],
                      "enc": "pickle", "offset": 0, "nbytes": 0}}})
        with pytest.raises(CodecError, match="unknown encoding"):
            read_frame(io.BytesIO(frame))

    def test_header_missing_sections(self):
        raw = json.dumps({"just": "stuff"}).encode()
        with pytest.raises(CodecError, match="must carry"):
            decode_frame(raw, b"")


class TestFrameNegotiation:
    def test_binary_negotiated_by_default(self, rng):
        deployment = tiny_deployment(rng)
        items = make_items(rng, deployment, count=3)
        baseline, _ = run_group([ThreadWorker()], deployment, items)
        server = WorkerServer().start()
        try:
            worker = RemoteWorker("127.0.0.1", server.port)
            results, _ = run_group([worker], deployment, items)
            assert worker.binary is False  # reset on close
            for base, other in zip(baseline, results):
                np.testing.assert_array_equal(base.logits, other.logits)
                assert base.merged_trace() == other.merged_trace()
        finally:
            server.close()

    def test_client_can_force_json(self, rng):
        deployment = tiny_deployment(rng)
        items = make_items(rng, deployment, count=3)
        baseline, _ = run_group([ThreadWorker()], deployment, items)
        server = WorkerServer().start()
        try:
            worker = RemoteWorker("127.0.0.1", server.port,
                                  frames="json")
            worker.start()
            assert worker.binary is False
            results, _ = run_group([worker], deployment, items)
            for base, other in zip(baseline, results):
                np.testing.assert_array_equal(base.logits, other.logits)
        finally:
            server.close()

    def test_json_server_declines_binary(self, rng):
        deployment = tiny_deployment(rng)
        items = make_items(rng, deployment, count=2)
        baseline, _ = run_group([ThreadWorker()], deployment, items)
        server = WorkerServer(frames="json").start()
        try:
            worker = RemoteWorker("127.0.0.1", server.port)
            worker.start()
            assert worker.binary is False
            results, _ = run_group([worker], deployment, items)
            for base, other in zip(baseline, results):
                np.testing.assert_array_equal(base.logits, other.logits)
        finally:
            server.close()

    def test_mixed_binary_and_json_group_bit_exact(self, rng):
        """One binary lane + one forced-JSON lane in the same group —
        the CI zero-copy smoke: framing must never show in the merge."""
        deployment = tiny_deployment(rng)
        items = make_items(rng, deployment, count=6)
        baseline, _ = run_group([ThreadWorker()], deployment, items)
        server = WorkerServer().start()
        try:
            binary_worker = RemoteWorker("127.0.0.1", server.port,
                                         name="lane-binary")
            json_worker = RemoteWorker("127.0.0.1", server.port,
                                       name="lane-json", frames="json")
            results, metrics = run_group([binary_worker, json_worker],
                                         deployment, items)
            for base, other in zip(baseline, results):
                np.testing.assert_array_equal(base.logits, other.logits)
                assert base.merged_trace() == other.merged_trace()
            assert sum(metrics.executed.values()) == len(items)
        finally:
            server.close()

    def test_bad_frames_value_rejected(self):
        with pytest.raises(ValueError):
            RemoteWorker("127.0.0.1", 1, frames="msgpack")
        with pytest.raises(ValueError):
            WorkerServer(frames="msgpack")


class TestShmLane:
    def test_shm_and_pickle_paths_bit_identical(self, rng,
                                                monkeypatch):
        deployment = tiny_deployment(rng)
        items = make_items(rng, deployment, count=4)
        with_shm, _ = run_group([ProcessWorker()], deployment, items)
        monkeypatch.setenv("REPRO_NO_SHM", "1")
        assert not shm_available()
        without, _ = run_group([ProcessWorker()], deployment, items)
        for a, b in zip(with_shm, without):
            np.testing.assert_array_equal(a.logits, b.logits)
            assert a.merged_trace() == b.merged_trace()

    def test_wide_output_layer_falls_back_to_pickled_logits(self, rng):
        """Logits wider than the reply region still come back exact."""
        from repro.core import AcceleratorConfig
        from repro.models import performance_network
        from repro.runtime import Deployment
        from repro.runtime.workers import _REPLY_CLASSES_CAP
        net = performance_network(
            [("flatten",), ("linear", _REPLY_CLASSES_CAP + 16)],
            input_shape=(1, 6, 6), num_steps=3,
            seed=int(rng.integers(1 << 16)))
        deployment = Deployment(
            network=net, config=AcceleratorConfig.for_network(net))
        items = make_items(rng, deployment, count=2)
        baseline, _ = run_group([ThreadWorker()], deployment, items)
        results, _ = run_group([ProcessWorker()], deployment, items)
        for base, other in zip(baseline, results):
            np.testing.assert_array_equal(base.logits, other.logits)


class TestBatchedSubmission:
    def test_submit_many_matches_serial(self, rng):
        deployment = tiny_deployment(rng)
        items = make_items(rng, deployment, count=10)
        baseline, _ = run_group([ThreadWorker()], deployment, items)
        results, metrics = run_group([ProcessWorker()], deployment,
                                     items, max_batch_items=4)
        assert metrics.batched > 0
        for base, other in zip(baseline, results):
            np.testing.assert_array_equal(base.logits, other.logits)
            assert base.merged_trace() == other.merged_trace()

    def test_batched_task_error_fails_only_its_item(self, rng):
        deployment = tiny_deployment(rng)
        good = make_items(rng, deployment, count=3)
        bad = WorkItem(item_id=99, deployment=7,  # no such deployment
                       images=good[0].images)
        with WorkerGroup([ProcessWorker()],
                         deployments=[deployment]) as group:
            futures = group.submit_many(good + [bad])
            for future, item in zip(futures[:3], good):
                result = future.result(timeout=60)
                assert result.item_id == item.item_id
            with pytest.raises(DeploymentError):
                futures[3].result(timeout=60)
            assert group.metrics.worker_crashes == 0

    def test_remote_execute_many_one_frame_roundtrip(self, rng):
        """A chunk to a remote worker comes back complete and ordered."""
        deployment = tiny_deployment(rng)
        items = make_items(rng, deployment, count=5)
        baseline, _ = run_group([ThreadWorker()], deployment, items)
        server = WorkerServer().start()
        try:
            results, metrics = run_group(
                [RemoteWorker("127.0.0.1", server.port)], deployment,
                items, max_batch_items=5)
            assert metrics.batched > 0
            for base, other in zip(baseline, results):
                np.testing.assert_array_equal(base.logits, other.logits)
                assert base.merged_trace() == other.merged_trace()
        finally:
            server.close()

    def test_max_batch_items_validated(self, rng):
        deployment = tiny_deployment(rng)
        from repro.errors import ConfigurationError
        with pytest.raises(ConfigurationError):
            WorkerGroup([ThreadWorker()], deployments=[deployment],
                        max_batch_items=0)

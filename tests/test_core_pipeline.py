"""Tests for the overlap extensions (prefetch, frame pipelining)."""

import pytest

from repro.core import AcceleratorConfig
from repro.core.pipeline import pipelined_throughput, prefetch_latency
from repro.models import performance_network, vgg11_performance_network


def small_net(num_steps=3):
    return performance_network(
        [("conv", 4, 3, 1, 0), ("pool", 2), ("conv", 8, 3, 1, 0),
         ("flatten",), ("linear", 16), ("linear", 4)],
        input_shape=(1, 12, 12), num_steps=num_steps)


class TestPrefetch:
    def test_never_slower_than_baseline(self):
        net = small_net()
        config = AcceleratorConfig.for_network(net)
        estimate = prefetch_latency(net, config)
        assert estimate.optimized_cycles <= estimate.baseline_cycles
        assert 0.0 <= estimate.saving_fraction < 1.0

    def test_hides_most_vgg_dram_time(self):
        """VGG's compute per layer dwarfs its weight streams, so prefetch
        should hide the bulk of the 1.3M DRAM cycles."""
        net = vgg11_performance_network(num_steps=6)
        config = AcceleratorConfig.for_network(net, 8, 115.0)
        estimate = prefetch_latency(net, config)
        saved = estimate.baseline_cycles - estimate.optimized_cycles
        assert saved > 500_000

    def test_cannot_beat_pure_compute(self):
        """Prefetch can at best remove all DRAM cycles except layer 1's."""
        from repro.core import LatencyModel
        net = vgg11_performance_network(num_steps=6)
        config = AcceleratorConfig.for_network(net, 8, 115.0)
        estimate = prefetch_latency(net, config)
        compute_only = LatencyModel(config).total_cycles(
            net, weights_on_chip=True)
        assert estimate.optimized_cycles >= compute_only


class TestFramePipelining:
    def test_interval_is_slowest_layer(self):
        from repro.core import LatencyModel
        net = small_net()
        config = AcceleratorConfig.for_network(net)
        estimate = pipelined_throughput(net, config)
        layers = LatencyModel(config).layer_latencies(net)
        assert estimate.optimized_cycles == max(
            l.total_cycles for l in layers)

    def test_throughput_gain_bounded_by_layer_count(self):
        net = small_net()
        config = AcceleratorConfig.for_network(net)
        estimate = pipelined_throughput(net, config)
        n_layers = 7  # input + 6 programs
        gain = estimate.baseline_cycles / estimate.optimized_cycles
        assert 1.0 <= gain <= n_layers

    def test_saving_fraction_consistency(self):
        net = small_net()
        config = AcceleratorConfig.for_network(net)
        estimate = pipelined_throughput(net, config)
        assert estimate.saving_fraction == pytest.approx(
            1 - estimate.optimized_cycles / estimate.baseline_cycles)

"""Sparsity edge cases: the sparse backend's skip logic must be inert.

The sparse engine earns its speed by *not* computing silent spike
planes — all-zero images, patches no spike touches, dead input taps.
Each skip is a claim that the skipped work contributes exactly zero,
and each has an edge where the claim could quietly break (empty live
masks, dense fallbacks, single-survivor gathers).  Every test here
builds a batch that exercises one such edge and asserts bit-identical
logits and fully identical traces across ``reference``, ``vectorized``
and ``sparse``.
"""

import numpy as np
import pytest

from repro.core import Accelerator, AcceleratorConfig
from repro.core.engine.sparse import DENSE_FALLBACK_DENSITY, SparseEngine
from repro.models import performance_network
from repro.snn import SNNModel

BACKENDS = ("reference", "vectorized", "sparse")

TRAFFIC_FIELDS = ("activation_read_bits", "activation_write_bits",
                  "kernel_read_values", "weight_stream_bits")


def _assert_all_equal(net, images, num_conv_units=2):
    """Run all three backends; assert identical logits and traces."""
    config = AcceleratorConfig.for_network(net,
                                           num_conv_units=num_conv_units)
    snn = SNNModel(net)
    outputs = {}
    for backend in BACKENDS:
        accelerator = Accelerator(config, backend=backend)
        accelerator.deploy(snn)
        outputs[backend] = accelerator.run_logits(images)
    ref_logits, ref_traces = outputs["reference"]
    for backend in ("vectorized", "sparse"):
        logits, traces = outputs[backend]
        np.testing.assert_array_equal(ref_logits, logits, err_msg=backend)
        for ref_trace, trace in zip(ref_traces, traces):
            assert ref_trace.input_cycles == trace.input_cycles, backend
            assert ref_trace.total_cycles == trace.total_cycles, backend
            for ref_layer, layer in zip(ref_trace.layers, trace.layers):
                assert ref_layer.cycles == layer.cycles, backend
                assert ref_layer.dram_cycles == layer.dram_cycles, backend
                assert ref_layer.adder_ops == layer.adder_ops, (
                    backend, ref_layer.name)
                for field in TRAFFIC_FIELDS:
                    assert (getattr(ref_layer.traffic, field)
                            == getattr(layer.traffic, field)), (
                        backend, ref_layer.name, field)
    return ref_logits


def _net(seed, stack=None, input_shape=(1, 8, 8), num_steps=4):
    return performance_network(
        stack or [("conv", 4, 3, 1, 1), ("pool", 2), ("flatten",),
                  ("linear", 12), ("linear", 5)],
        input_shape=input_shape, num_steps=num_steps, seed=seed)


class TestSparsityEdgeCases:
    def test_all_zero_batch(self, rng):
        """Every image silent: every layer takes the skip-everything path."""
        net = _net(int(rng.integers(1 << 16)))
        images = np.zeros((3,) + net.input_shape)
        logits = _assert_all_equal(net, images)
        # All-zero inputs yield bias-only logits, identical per image.
        assert (logits == logits[0]).all()

    def test_zero_images_mixed_into_batch(self, rng):
        """Silent images ride alongside live ones (partial live mask)."""
        net = _net(int(rng.integers(1 << 16)))
        images = rng.random((4,) + net.input_shape)
        images[1] = 0.0
        images[3] = 0.0
        _assert_all_equal(net, images)

    def test_fully_dense_planes(self, rng):
        """Saturated inputs: the dense-fallback branch must stay exact."""
        net = _net(int(rng.integers(1 << 16)))
        images = np.clip(rng.random((2,) + net.input_shape), 0.5, None)
        assert images.astype(bool).mean() > DENSE_FALLBACK_DENSITY
        _assert_all_equal(net, images)

    def test_single_active_pixel(self, rng):
        """One spike in the whole batch: single-row gathers everywhere."""
        net = _net(int(rng.integers(1 << 16)))
        images = np.zeros((2,) + net.input_shape)
        images[0, 0, 3, 4] = 0.9
        _assert_all_equal(net, images)

    def test_single_active_row(self, rng):
        """One live input row: most im2col patches stay silent."""
        net = _net(int(rng.integers(1 << 16)))
        images = np.zeros((2,) + net.input_shape)
        images[:, :, 5, :] = rng.random((2, 1, net.input_shape[2]))
        _assert_all_equal(net, images)

    def test_subthreshold_values_quantize_to_silence(self, rng):
        """Values below the T-step grid produce empty spike trains.

        With ``num_steps=3`` anything under 1/8 floors to zero — the
        batch looks nonzero in float but is silent after quantization.
        """
        net = _net(int(rng.integers(1 << 16)), num_steps=3)
        images = rng.random((2,) + net.input_shape) * 0.12
        logits = _assert_all_equal(net, images)
        assert (logits == logits[0]).all()

    def test_strided_padded_stack_with_sparse_input(self, rng):
        """Geometry stress: stride/padding offsets in the patch gather."""
        net = _net(int(rng.integers(1 << 16)),
                   stack=[("conv", 3, 3, 2, 1), ("conv", 5, 3, 1, 0),
                          ("flatten",), ("linear", 6)])
        images = rng.random((3,) + net.input_shape)
        images[images < 0.8] = 0.0
        _assert_all_equal(net, images)

    def test_multi_channel_sparse(self, rng):
        """Channel-major im2col layout with one silent channel."""
        net = _net(int(rng.integers(1 << 16)), input_shape=(3, 6, 6))
        images = rng.random((2,) + net.input_shape)
        images[:, 1] = 0.0
        _assert_all_equal(net, images)

    def test_sparse_engine_registered(self):
        from repro.core import available_backends
        assert "sparse" in available_backends()
        accelerator = Accelerator(AcceleratorConfig(), backend="sparse")
        assert accelerator.backend == "sparse"
        assert isinstance(accelerator, Accelerator)

    def test_sparse_engine_class_selectable(self):
        accelerator = Accelerator(AcceleratorConfig(),
                                  backend=SparseEngine)
        assert accelerator.backend == "sparse"


class TestSparseIsFasterOnSparseInput:
    def test_less_popcount_work_same_answer(self, rng):
        """Sanity: the sparse popcount path equals the dense one on a
        pathological mix of zero and saturated entries."""
        from repro.core import compile_network, create_engine
        net = _net(int(rng.integers(1 << 16)))
        compiled = compile_network(net, AcceleratorConfig.for_network(net))
        dense = create_engine("vectorized", compiled)
        sparse = create_engine("sparse", compiled)
        x = rng.integers(0, 16, size=(4, 2, 5, 7)).astype(np.int64)
        x[x < 12] = 0
        weights = rng.integers(1, 4, size=7).astype(np.int64)
        np.testing.assert_array_equal(
            dense._popcount_sum(x, 4, weights, axis=3),
            sparse._popcount_sum(x, 4, weights, axis=3))
        np.testing.assert_array_equal(
            dense._popcount_sum(x.reshape(4, -1), 4),
            sparse._popcount_sum(x.reshape(4, -1), 4))

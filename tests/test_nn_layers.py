"""Gradient and behaviour tests for every trainable layer."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.nn import (
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    Dropout,
    Flatten,
    Linear,
    MaxPool2d,
    ReLU,
)


def numerical_grad_check(layer, x, param=None, eps=1e-6, spots=3, seed=0):
    """Compare analytic gradients to central differences at random spots."""
    rng = np.random.default_rng(seed)
    out = layer.forward(x)
    grad_out = rng.normal(size=out.shape)
    grad_in = layer.backward(grad_out)
    target = param if param is not None else x
    analytic = grad_in if param is None else None
    if param is not None:
        slot = [i for i, p in enumerate(layer.params()) if p is param][0]
        analytic = layer.grads()[slot]
    flat_idx = rng.choice(target.size, size=min(spots, target.size),
                          replace=False)
    for fi in flat_idx:
        idx = np.unravel_index(fi, target.shape)
        original = target[idx]
        target[idx] = original + eps
        lp = (layer.forward(x) * grad_out).sum()
        target[idx] = original - eps
        lm = (layer.forward(x) * grad_out).sum()
        target[idx] = original
        numeric = (lp - lm) / (2 * eps)
        assert analytic[idx] == pytest.approx(numeric, rel=1e-4, abs=1e-7)


class TestConv2dLayer:
    def test_output_shape(self):
        layer = Conv2d(3, 8, kernel_size=3, padding=1)
        out = layer.forward(np.zeros((2, 3, 10, 10)))
        assert out.shape == (2, 8, 10, 10)

    def test_input_gradient(self):
        layer = Conv2d(2, 3, kernel_size=3)
        x = np.random.default_rng(0).normal(size=(2, 2, 6, 6))
        numerical_grad_check(layer, x)

    def test_weight_gradient(self):
        layer = Conv2d(2, 3, kernel_size=3)
        x = np.random.default_rng(1).normal(size=(2, 2, 6, 6))
        numerical_grad_check(layer, x, param=layer.weight)

    def test_bias_gradient(self):
        layer = Conv2d(2, 3, kernel_size=3)
        x = np.random.default_rng(2).normal(size=(1, 2, 5, 5))
        numerical_grad_check(layer, x, param=layer.bias)

    def test_no_bias_variant(self):
        layer = Conv2d(1, 1, kernel_size=3, bias=False)
        assert layer.bias is None
        assert len(layer.params()) == 1

    def test_backward_before_forward_raises(self):
        with pytest.raises(ShapeError):
            Conv2d(1, 1, 3).backward(np.zeros((1, 1, 2, 2)))

    def test_invalid_dims_rejected(self):
        with pytest.raises(ShapeError):
            Conv2d(0, 1, 3)


class TestLinearLayer:
    def test_forward_values(self):
        layer = Linear(3, 2)
        layer.weight = np.array([[1.0, 0, 0], [0, 2.0, 0]])
        layer.bias = np.array([0.5, -0.5])
        out = layer.forward(np.array([[1.0, 1.0, 1.0]]))
        np.testing.assert_allclose(out, [[1.5, 1.5]])

    def test_gradients(self):
        layer = Linear(4, 3)
        x = np.random.default_rng(0).normal(size=(5, 4))
        numerical_grad_check(layer, x)
        numerical_grad_check(layer, x, param=layer.weight)
        numerical_grad_check(layer, x, param=layer.bias)

    def test_shape_check(self):
        with pytest.raises(ShapeError):
            Linear(4, 2).forward(np.zeros((1, 5)))


class TestReLU:
    def test_clamps_negative(self):
        out = ReLU().forward(np.array([-1.0, 0.0, 2.0]))
        np.testing.assert_allclose(out, [0, 0, 2])

    def test_gradient_mask(self):
        layer = ReLU()
        x = np.array([[-1.0, 3.0]])
        layer.forward(x)
        grad = layer.backward(np.array([[5.0, 5.0]]))
        np.testing.assert_allclose(grad, [[0.0, 5.0]])


class TestPoolLayers:
    def test_avg_pool_forward_backward(self):
        layer = AvgPool2d(2)
        x = np.random.default_rng(0).normal(size=(1, 2, 6, 6))
        numerical_grad_check(layer, x)

    def test_max_pool_forward_backward(self):
        layer = MaxPool2d(2)
        # Use well-separated values so argmax is stable under eps nudges.
        x = np.random.default_rng(1).permutation(144).reshape(
            1, 4, 6, 6).astype(float)
        numerical_grad_check(layer, x)

    def test_default_stride_equals_size(self):
        assert AvgPool2d(3).stride == 3
        assert MaxPool2d(2, stride=1).stride == 1


class TestFlatten:
    def test_roundtrip(self):
        layer = Flatten()
        x = np.arange(24).reshape(2, 3, 2, 2).astype(float)
        out = layer.forward(x)
        assert out.shape == (2, 12)
        back = layer.backward(out)
        np.testing.assert_array_equal(back, x)


class TestDropout:
    def test_eval_mode_is_identity(self):
        layer = Dropout(0.5)
        layer.eval()
        x = np.random.default_rng(0).normal(size=(4, 4))
        np.testing.assert_array_equal(layer.forward(x), x)

    def test_training_preserves_expectation(self):
        layer = Dropout(0.5, seed=0)
        x = np.ones((200, 200))
        out = layer.forward(x)
        assert out.mean() == pytest.approx(1.0, abs=0.05)

    def test_invalid_rate(self):
        with pytest.raises(ShapeError):
            Dropout(1.0)


class TestBatchNorm2d:
    def test_normalizes_training_batch(self):
        layer = BatchNorm2d(3)
        x = np.random.default_rng(0).normal(2.0, 3.0, size=(8, 3, 4, 4))
        out = layer.forward(x)
        assert out.mean() == pytest.approx(0.0, abs=1e-7)
        assert out.std() == pytest.approx(1.0, abs=1e-2)

    def test_eval_uses_running_stats(self):
        layer = BatchNorm2d(2)
        x = np.random.default_rng(1).normal(size=(16, 2, 3, 3))
        for _ in range(50):
            layer.forward(x)
        layer.eval()
        out_eval = layer.forward(x)
        assert abs(out_eval.mean()) < 0.2

    def test_gradients(self):
        layer = BatchNorm2d(2)
        x = np.random.default_rng(2).normal(size=(4, 2, 3, 3))
        numerical_grad_check(layer, x)
        numerical_grad_check(layer, x, param=layer.gamma)
        numerical_grad_check(layer, x, param=layer.beta)

    def test_shape_check(self):
        with pytest.raises(ShapeError):
            BatchNorm2d(3).forward(np.zeros((1, 2, 4, 4)))

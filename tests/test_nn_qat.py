"""Tests for quantization-aware training."""

import numpy as np
import pytest

from repro.errors import QuantizationError
from repro.nn import Adam, Conv2d, Flatten, Linear, ReLU, Sequential
from repro.nn.qat import (
    FakeQuantActivation,
    QATTrainer,
    add_activation_quantization,
    fake_quantized_weights,
)
from repro.snn import ann_to_snn


def tiny_model(seed=0):
    rng = np.random.default_rng(seed)
    return Sequential([
        Conv2d(1, 3, kernel_size=3, rng=rng), ReLU(),
        Flatten(),
        Linear(3 * 6 * 6, 8, rng=rng), ReLU(),
        Linear(8, 3, rng=rng),
    ])


class TestFakeQuantActivation:
    def test_snaps_to_grid(self):
        fq = FakeQuantActivation(num_steps=2)  # 4 levels
        fq.scale = 1.0
        fq.training = False
        out = fq.forward(np.array([0.0, 0.3, 0.6, 0.9]))
        grid = np.round(out * 4) / 4
        np.testing.assert_allclose(out, grid)

    def test_rounds_to_nearest(self):
        fq = FakeQuantActivation(num_steps=2)
        fq.scale = 1.0
        fq.training = False
        # 0.3 * 4 = 1.2 -> level 1; 0.4 * 4 = 1.6 -> level 2
        out = fq.forward(np.array([0.3, 0.4]))
        np.testing.assert_allclose(out, [0.25, 0.5])

    def test_saturates_at_scale(self):
        fq = FakeQuantActivation(num_steps=3)
        fq.scale = 1.0
        fq.training = False
        out = fq.forward(np.array([5.0]))
        assert out[0] == pytest.approx(7 / 8)

    def test_running_scale_tracks_percentile(self):
        fq = FakeQuantActivation(num_steps=4, percentile=100.0,
                                 momentum=1.0)
        fq.forward(np.linspace(0, 2.0, 50))
        assert fq.scale == pytest.approx(2.0)

    def test_ste_gradient_masked(self):
        fq = FakeQuantActivation(num_steps=3)
        fq.forward(np.array([-0.5, 0.2, 5.0]))  # sets scale, mask
        grad = fq.backward(np.ones(3))
        assert grad[0] == 0.0        # below zero: clipped
        assert grad[1] == 1.0        # inside range: straight through
        assert grad[2] == 0.0        # above scale: clipped

    def test_eval_before_training_raises(self):
        fq = FakeQuantActivation(num_steps=3)
        fq.training = False
        with pytest.raises(QuantizationError):
            fq.forward(np.ones(3))

    def test_invalid_steps(self):
        with pytest.raises(QuantizationError):
            FakeQuantActivation(0)


class TestAddActivationQuantization:
    def test_inserts_after_each_relu(self):
        model = tiny_model()
        qat = add_activation_quantization(model, num_steps=4)
        relu_count = sum(isinstance(l, ReLU) for l in model.layers)
        fq_count = sum(isinstance(l, FakeQuantActivation)
                       for l in qat.layers)
        assert fq_count == relu_count

    def test_shares_parameters_with_original(self):
        model = tiny_model()
        qat = add_activation_quantization(model, num_steps=4)
        assert qat.layers[0] is model.layers[0]


class TestFakeQuantizedWeights:
    def test_weights_quantized_inside_context(self):
        model = tiny_model()
        original = model.layers[0].weight.copy()
        with fake_quantized_weights(model, weight_bits=3):
            inside = model.layers[0].weight
            scales = np.abs(inside).reshape(3, -1).max(axis=1) / 3
            ratio = inside / np.where(scales[:, None, None, None] > 0,
                                      scales[:, None, None, None], 1)
            np.testing.assert_allclose(ratio, np.rint(ratio), atol=1e-9)
        np.testing.assert_array_equal(model.layers[0].weight, original)

    def test_restores_on_exception(self):
        model = tiny_model()
        original = model.layers[0].weight
        try:
            with fake_quantized_weights(model, weight_bits=3):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert model.layers[0].weight is original


class TestQATTrainer:
    def _dataset(self, n=240, seed=0):
        rng = np.random.default_rng(seed)
        labels = rng.integers(0, 3, size=n)
        images = rng.random((n, 1, 8, 8)) * 0.2
        # Make class signal: brighten a class-specific quadrant.
        for i, lab in enumerate(labels):
            y, x = divmod(int(lab), 2)
            images[i, 0, y * 4:(y + 1) * 4, x * 4:(x + 1) * 4] += 0.7
        return np.clip(images, 0, 1), labels

    def test_learns_under_quantization(self):
        images, labels = self._dataset()
        model = add_activation_quantization(tiny_model(), num_steps=3)
        trainer = QATTrainer(model, Adam(model.params(), lr=2e-3),
                             weight_bits=3, input_steps=3, batch_size=32)
        log = trainer.fit(images, labels, epochs=8)
        assert log.train_accuracies[-1] > 0.8

    def test_converted_model_preserves_qat_accuracy(self):
        images, labels = self._dataset(seed=1)
        model = add_activation_quantization(tiny_model(seed=1), num_steps=3)
        trainer = QATTrainer(model, Adam(model.params(), lr=2e-3),
                             weight_bits=3, input_steps=3, batch_size=32)
        trainer.fit(images, labels, epochs=8)
        snn = ann_to_snn(model, images[:64], num_steps=3, weight_bits=3)
        acc = (snn.predict(images) == labels).mean()
        assert acc > 0.75

    def test_input_quantization_grid(self):
        trainer = QATTrainer(tiny_model(), Adam([np.zeros(1)], lr=1e-3),
                             input_steps=2)
        q = trainer._quantize_inputs(np.array([0.0, 0.3, 0.6, 0.99]))
        np.testing.assert_allclose(q, [0.0, 0.25, 0.5, 0.75])

    def test_conversion_uses_trained_scales(self):
        images, labels = self._dataset(seed=2)
        model = add_activation_quantization(tiny_model(seed=2), num_steps=3)
        trainer = QATTrainer(model, Adam(model.params(), lr=2e-3),
                             weight_bits=3, input_steps=3, batch_size=32)
        trainer.fit(images, labels, epochs=2)
        fq_scales = [l.scale for l in model.layers
                     if isinstance(l, FakeQuantActivation)]
        snn = ann_to_snn(model, images[:32], num_steps=3, weight_bits=3)
        convs = snn.network.conv_layers()
        # The first conv's requantization scale must be derived from the
        # trained FQ scale: M = lam_in * s_w / lam_out with lam_in = 1.
        head_fq = fq_scales[0]
        expected_order = 1.0 / head_fq
        ratio = convs[0].scales.mean() * head_fq
        assert 0.001 < ratio < 1000  # sanity: scales wired through

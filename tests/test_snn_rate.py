"""Tests for the rate-coded SNN baseline."""

import numpy as np
import pytest

from repro.nn import (
    AvgPool2d,
    Conv2d,
    Flatten,
    Linear,
    ReLU,
    Sequential,
)
from repro.snn import RateIFNeuron, ann_to_rate_snn
from repro.errors import SimulationError


def small_model(seed=0):
    rng = np.random.default_rng(seed)
    return Sequential([
        Conv2d(1, 3, kernel_size=3, rng=rng), ReLU(),
        AvgPool2d(2),
        Flatten(),
        Linear(3 * 5 * 5, 4, rng=rng),
    ])


class TestRateIFNeuron:
    def test_fires_at_threshold(self):
        neuron = RateIFNeuron((2,), threshold=1.0)
        spikes = neuron.step(np.array([1.5, 0.4]))
        np.testing.assert_array_equal(spikes, [1, 0])

    def test_reset_by_subtraction_keeps_residual(self):
        neuron = RateIFNeuron((1,), threshold=1.0)
        neuron.step(np.array([1.5]))
        assert neuron.potential[0] == pytest.approx(0.5)

    def test_subthreshold_accumulates(self):
        neuron = RateIFNeuron((1,))
        assert neuron.step(np.array([0.6]))[0] == 0
        assert neuron.step(np.array([0.6]))[0] == 1

    def test_rate_approximates_input(self):
        neuron = RateIFNeuron((1,))
        steps = 100
        for _ in range(steps):
            neuron.step(np.array([0.37]))
        assert neuron.spike_count[0] / steps == pytest.approx(0.37,
                                                              abs=0.02)

    def test_invalid_threshold(self):
        with pytest.raises(SimulationError):
            RateIFNeuron((1,), threshold=0.0)

    def test_shape_mismatch(self):
        with pytest.raises(SimulationError):
            RateIFNeuron((2,)).step(np.zeros(3))


class TestRateConversion:
    def test_accuracy_converges_to_float_model(self):
        """Long rate simulations must approach the float ANN's decisions.

        This is the defining property of threshold-balanced conversion —
        and the contrast with radix encoding, which gets there in ~4
        steps instead of ~64.
        """
        rng = np.random.default_rng(0)
        model = small_model()
        images = rng.random((48, 1, 12, 12))
        model.eval()
        float_pred = model.forward(images).argmax(axis=1)
        rate = ann_to_rate_snn(model, images[:24], weight_bits=None)
        long_pred = rate.predict(images, num_steps=64)
        assert (long_pred == float_pred).mean() > 0.85

    def test_short_trains_are_worse_than_long(self):
        rng = np.random.default_rng(1)
        model = small_model(seed=2)
        images = rng.random((60, 1, 12, 12))
        model.eval()
        float_pred = model.forward(images).argmax(axis=1)
        rate = ann_to_rate_snn(model, images[:24], weight_bits=None)
        short = (rate.predict(images, 2) == float_pred).mean()
        longer = (rate.predict(images, 48) == float_pred).mean()
        assert longer >= short

    def test_weight_quantization_option(self):
        model = small_model()
        images = np.random.default_rng(2).random((16, 1, 12, 12))
        rate = ann_to_rate_snn(model, images, weight_bits=3)
        out = rate.forward(images[:4], num_steps=5)
        assert out.shape == (4, 4)

    def test_zero_steps_rejected(self):
        model = small_model()
        images = np.random.default_rng(3).random((8, 1, 12, 12))
        rate = ann_to_rate_snn(model, images)
        with pytest.raises(Exception):
            rate.forward(images[:2], num_steps=0)

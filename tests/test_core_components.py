"""Unit tests for the accelerator's datapath components."""

import numpy as np
import pytest

from repro.core import (
    AdderArray,
    InputShiftRegister,
    OutputAccumulator,
)
from repro.errors import ShapeError, SimulationError


class TestInputShiftRegister:
    def test_load_and_taps(self):
        reg = InputShiftRegister(8)
        reg.load_row(np.array([1, 0, 1, 1, 0, 0, 1, 0]))
        np.testing.assert_array_equal(reg.taps(4, 2), [1, 1, 0, 1])

    def test_shift_moves_left_and_zero_fills(self):
        reg = InputShiftRegister(4)
        reg.load_row(np.array([1, 0, 1, 1]))
        reg.shift()
        np.testing.assert_array_equal(reg.bits, [0, 1, 1, 0])

    def test_short_row_left_aligned(self):
        reg = InputShiftRegister(6)
        reg.load_row(np.array([1, 1]))
        np.testing.assert_array_equal(reg.bits, [1, 1, 0, 0, 0, 0])

    def test_shift_exposes_kernel_columns(self):
        """After j shifts, tap x reads original position x*stride + j —
        exactly the alignment Alg. 1 needs."""
        row = np.array([1, 0, 0, 1, 1, 0, 0, 1])
        reg = InputShiftRegister(8)
        reg.load_row(row)
        for shift in range(3):
            taps = reg.taps(2, 4)
            np.testing.assert_array_equal(
                taps, [row[0 + shift], row[4 + shift]])
            reg.shift()

    def test_row_too_wide_rejected(self):
        reg = InputShiftRegister(4)
        with pytest.raises(ShapeError):
            reg.load_row(np.ones(5))

    def test_non_binary_rejected(self):
        reg = InputShiftRegister(4)
        with pytest.raises(SimulationError):
            reg.load_row(np.array([0, 2]))

    def test_taps_before_load_rejected(self):
        with pytest.raises(SimulationError):
            InputShiftRegister(4).taps(2, 1)

    def test_taps_beyond_register_rejected(self):
        reg = InputShiftRegister(4)
        reg.load_row(np.ones(4))
        with pytest.raises(ShapeError):
            reg.taps(3, 2)  # tap 2 reads position 4


class TestAdderArray:
    def test_conditional_accumulation(self):
        array = AdderArray(columns=3, rows=2)
        kernels = np.array([[1, 2, 3], [4, 5, 6]])
        array.step(np.array([1, 0, 1]), kernels)
        expected = np.array([[1, 0, 3], [4, 0, 6]])
        np.testing.assert_array_equal(array.partials, expected)

    def test_adder_ops_counts_spiking_columns_only(self):
        array = AdderArray(columns=4, rows=3)
        array.step(np.array([1, 1, 0, 0]), np.ones((3, 4), dtype=np.int64))
        assert array.adder_ops == 2 * 3

    def test_advance_streams_partials_down(self):
        array = AdderArray(columns=2, rows=2)
        array.step(np.array([1, 1]), np.array([[1, 1], [10, 10]]))
        out1 = array.advance()
        np.testing.assert_array_equal(out1, [10, 10])  # bottom row exits
        # The former top row (1, 1) is now at the bottom.
        array.step(np.array([0, 0]), np.zeros((2, 2), dtype=np.int64))
        out2 = array.advance()
        np.testing.assert_array_equal(out2, [1, 1])

    def test_single_row_pipeline(self):
        """A 1-row array (1xK kernels) must exit sums immediately."""
        array = AdderArray(columns=2, rows=1)
        array.step(np.array([1, 0]), np.array([[7, 7]]))
        np.testing.assert_array_equal(array.advance(), [7, 0])

    def test_full_conv_row_sequence(self):
        """Drive the array exactly as Alg. 1 does for a 1-D convolution
        and check it produces the correct sliding-window dot products."""
        kernel = np.array([2, 3, 5])          # Kc = 3, one kernel row
        row = np.array([1, 0, 1, 1, 0, 1])    # W = 6 -> W_out = 4
        array = AdderArray(columns=4, rows=1)
        reg = InputShiftRegister(6)
        reg.load_row(row)
        for j in range(3):
            taps = reg.taps(4, 1)
            array.step(taps, np.tile(kernel[j], (1, 4)))
            reg.shift()
        result = array.advance()
        expected = [np.dot(kernel, row[i:i + 3]) for i in range(4)]
        np.testing.assert_array_equal(result, expected)

    def test_shape_validation(self):
        array = AdderArray(2, 2)
        with pytest.raises(ShapeError):
            array.step(np.ones(3), np.ones((2, 2)))
        with pytest.raises(ShapeError):
            array.step(np.ones(2), np.ones((3, 2)))
        with pytest.raises(SimulationError):
            array.step(np.array([2, 0]), np.ones((2, 2)))


class TestOutputAccumulator:
    def test_radix_left_shift_between_steps(self):
        acc = OutputAccumulator(1, 1, 2)
        acc.begin_time_step()
        acc.add_row(0, 0, np.array([1, 1]))
        acc.begin_time_step()            # shift: 1 -> 2
        acc.add_row(0, 0, np.array([0, 1]))
        np.testing.assert_array_equal(acc.raw()[0, 0], [2, 3])

    def test_accumulates_input_channels_within_step(self):
        acc = OutputAccumulator(1, 1, 2)
        acc.begin_time_step()
        acc.add_row(0, 0, np.array([1, 2]))
        acc.add_row(0, 0, np.array([10, 20]))
        np.testing.assert_array_equal(acc.raw()[0, 0], [11, 22])

    def test_finalize_applies_bias_relu_requant(self):
        acc = OutputAccumulator(2, 1, 1)
        acc.begin_time_step()
        acc.add_row(0, 0, np.array([4]))
        acc.add_row(1, 0, np.array([-10]))
        out = acc.finalize(bias=np.array([0, 0]),
                           scales=np.array([1.0, 1.0]), num_steps=1)
        np.testing.assert_array_equal(out.ravel(), [1, 0])  # saturate/ReLU

    def test_finalize_step_count_guard(self):
        acc = OutputAccumulator(1, 1, 1)
        acc.begin_time_step()
        with pytest.raises(SimulationError):
            acc.finalize(np.zeros(1), np.ones(1), num_steps=2)

    def test_add_before_step_guard(self):
        acc = OutputAccumulator(1, 1, 1)
        with pytest.raises(SimulationError):
            acc.add_row(0, 0, np.array([1]))

    def test_bounds_checks(self):
        acc = OutputAccumulator(1, 2, 2)
        acc.begin_time_step()
        with pytest.raises(ShapeError):
            acc.add_row(1, 0, np.zeros(2))
        with pytest.raises(ShapeError):
            acc.add_row(0, 2, np.zeros(2))
        with pytest.raises(ShapeError):
            acc.add_row(0, 0, np.zeros(3))

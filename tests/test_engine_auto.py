"""The ``auto`` backend: density routing that can never change a bit.

Pinned here:

* ``auto`` is a first-class registry entry and routes exactly at the
  calibrated crossover — sparse at/below, vectorized above;
* every routing decision lands on the telemetry counter
  ``engine_auto_routed_total{backend=...}``;
* the fabric contract extends to ``auto`` as a lane attribute: a
  mixed-density work stream through a thread+process+remote lane mix
  merges bit-identically to a serial ``vectorized`` run.
"""

import numpy as np

from repro.core import AcceleratorConfig
from repro.core.calibration import DEFAULT_LATENCY
from repro.core.engine import (
    AutoEngine,
    CalibrationTable,
    available_backends,
    clear_calibration_tables,
    create_engine,
    install_table,
    warm_compile,
)
from repro.core.engine.cache import content_key
from repro.core.engine.calibrate import probe_batch
from repro.models import performance_network
from repro.runtime import Deployment, WorkItem, WorkerGroup, WorkerServer
from repro.runtime import create_workers
from repro.telemetry import get_registry

import pytest


def tiny_network(rng, num_steps=3):
    return performance_network(
        [("conv", 4, 3, 1, 1), ("pool", 2), ("flatten",), ("linear", 5)],
        input_shape=(1, 8, 8), num_steps=num_steps,
        seed=int(rng.integers(1 << 16)))


@pytest.fixture(autouse=True)
def _isolated_tables():
    clear_calibration_tables()
    yield
    clear_calibration_tables()


def _routed_total(backend: str) -> float:
    return get_registry().counter(
        "engine_auto_routed_total",
        labelnames=("backend",)).labels(backend=backend).value


def test_auto_is_registered():
    assert "auto" in available_backends()


def test_routes_at_the_calibrated_crossover(rng):
    net = tiny_network(rng)
    config = AcceleratorConfig.for_network(net)
    install_table(CalibrationTable(
        content_key=content_key(net, config, DEFAULT_LATENCY),
        backend_crossover=0.5))
    engine = create_engine("auto", warm_compile(net, config))
    assert isinstance(engine, AutoEngine)
    assert engine.route_density == 0.5
    shape = tuple(net.input_shape)
    quiet = probe_batch(shape, 0.05, 4, rng)
    loud = probe_batch(shape, 0.9, 4, rng)
    assert engine.select_backend(quiet) == "sparse"
    assert engine.select_backend(loud) == "vectorized"

    sparse_before = _routed_total("sparse")
    vec_before = _routed_total("vectorized")
    engine.run_batch(quiet)
    engine.run_batch(quiet)
    engine.run_batch(loud)
    assert engine.last_backend == "vectorized"
    assert _routed_total("sparse") == sparse_before + 2
    assert _routed_total("vectorized") == vec_before + 1


def test_mixed_density_stream_merges_bit_identically(rng):
    """The satellite contract: auto on a thread+process+remote mix ==
    serial vectorized, logits and merged traces alike."""
    net = tiny_network(rng)
    config = AcceleratorConfig.for_network(net)
    shape = tuple(net.input_shape)
    # A mixed-density stream: silent, quiet event frames, and dense
    # batches interleaved, so auto routes both ways mid-run.
    batches = [probe_batch(shape, d, 3, rng, silent_frac=s)
               for d, s in ((0.02, 0.5), (0.9, 0.0), (0.05, 1.0),
                            (0.5, 0.0), (0.1, 0.2), (0.8, 0.0))]
    items = [WorkItem(item_id=i, deployment=0, images=images)
             for i, images in enumerate(batches)]

    def run(backend, workers):
        deployment = Deployment(network=net, config=config,
                                backend=backend)
        with WorkerGroup(workers, deployments=[deployment]) as group:
            return group.run(items)

    baseline = run("vectorized", create_workers(["thread"]))
    server = WorkerServer().start()
    try:
        mixed = run("auto", create_workers(
            ["thread", "process", f"127.0.0.1:{server.port}"]))
    finally:
        server.close()
    for base, other in zip(baseline, mixed):
        np.testing.assert_array_equal(base.logits, other.logits)
        assert base.merged_trace() == other.merged_trace()


def test_auto_empty_and_check_batch(rng):
    net = tiny_network(rng)
    engine = create_engine(
        "auto", warm_compile(net, AcceleratorConfig.for_network(net)))
    silent = np.zeros((2,) + tuple(net.input_shape))
    logits, traces = engine.run_batch(silent)
    assert engine.last_backend == "sparse"
    ref_logits, _ = engine._dense.run_batch(silent)
    np.testing.assert_array_equal(logits, ref_logits)
    assert len(traces) == 2

"""Shared fixtures for the test suite.

``rng`` is the single entry point for randomness in stochastic tests
(backend equivalence, randomized networks): it derives a deterministic
seed from the test's node id, so a failure always reproduces by re-running
that test — and ``REPRO_TEST_SEED=<n>`` forces one global seed to explore
other draws.
"""

import os
import zlib

import numpy as np
import pytest


def seed_for(name: str) -> int:
    """Deterministic per-test seed (overridable via REPRO_TEST_SEED)."""
    env = os.environ.get("REPRO_TEST_SEED")
    if env is not None:
        return int(env)
    return zlib.adler32(name.encode())


@pytest.fixture
def rng(request) -> np.random.Generator:
    """Per-test deterministic numpy Generator for stochastic tests."""
    return np.random.default_rng(seed_for(request.node.nodeid))

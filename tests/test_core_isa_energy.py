"""Tests for the configuration-word ISA, the energy breakdown and the
event-driven baseline cost model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import (
    EventDrivenConfig,
    estimate_event_driven,
)
from repro.core import (
    AcceleratorConfig,
    Controller,
    EnergyConstants,
    Instruction,
    Opcode,
    assemble,
    compile_network,
    decode,
    disassemble,
    encode,
    trace_energy,
)
from repro.core.config import MemoryConfig
from repro.errors import CompilationError
from repro.models import performance_network, vgg11_performance_network
from repro.snn import SNNModel


def small_net(num_steps=3):
    return performance_network(
        [("conv", 4, 3, 1, 1), ("pool", 2), ("flatten",),
         ("linear", 12), ("linear", 3)],
        input_shape=(1, 8, 8), num_steps=num_steps)


class TestInstructionEncoding:
    def test_roundtrip_conv(self):
        instr = Instruction(Opcode.CONV, {
            "in_channels": 64, "out_channels": 128, "height": 16,
            "width": 16, "kernel": 3, "stride": 1, "padding": 1,
            "groups": 8})
        assert decode(encode(instr)) == instr

    @given(st.sampled_from(list(Opcode)), st.integers(0, 1 << 30))
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_random_operands(self, opcode, seed):
        from repro.core.isa import _FIELDS
        rng = np.random.default_rng(seed)
        operands = {name: int(rng.integers(0, 1 << width))
                    for name, width in _FIELDS[opcode]}
        instr = Instruction(opcode, operands)
        assert decode(encode(instr)) == instr

    def test_word_fits_64_bits(self):
        instr = Instruction(Opcode.LINEAR, {
            "in_features": 65535, "out_features": 65535, "is_output": 1})
        assert encode(instr) < (1 << 64)

    def test_overflowing_operand_rejected(self):
        instr = Instruction(Opcode.POOL, {
            "channels": 5000, "height": 8, "width": 8, "size": 2,
            "stride": 2})
        with pytest.raises(CompilationError):
            encode(instr)

    def test_missing_operand_rejected(self):
        with pytest.raises(CompilationError):
            encode(Instruction(Opcode.FLATTEN, {}))

    def test_unknown_opcode_rejected(self):
        with pytest.raises(CompilationError):
            decode(0xF)

    def test_stray_bits_rejected(self):
        word = encode(Instruction(Opcode.HALT, {}))
        with pytest.raises(CompilationError):
            decode(word | (1 << 63))

    def test_str_listing(self):
        instr = Instruction(Opcode.FLATTEN, {"features": 128})
        assert "flatten" in str(instr)
        assert "features=128" in str(instr)


class TestAssemble:
    def test_program_structure(self):
        net = small_net()
        compiled = compile_network(net, AcceleratorConfig.for_network(net))
        words = assemble(compiled)
        listing = disassemble(words)
        opcodes = [i.opcode for i in listing]
        assert opcodes[0] == Opcode.LOAD_INPUT
        assert opcodes[-1] == Opcode.HALT
        assert opcodes[1:-1] == [Opcode.CONV, Opcode.POOL, Opcode.FLATTEN,
                                 Opcode.LINEAR, Opcode.LINEAR]

    def test_operands_carry_layer_geometry(self):
        net = small_net()
        compiled = compile_network(net, AcceleratorConfig.for_network(net))
        listing = disassemble(assemble(compiled))
        conv = [i for i in listing if i.opcode == Opcode.CONV][0]
        assert conv.operands["out_channels"] == 4
        assert conv.operands["kernel"] == 3
        head = [i for i in listing if i.opcode == Opcode.LINEAR][-1]
        assert head.operands["is_output"] == 1

    def test_dram_fetches_emitted_for_streaming_models(self):
        net = vgg11_performance_network(num_steps=6)
        compiled = compile_network(
            net, AcceleratorConfig.for_network(net, 8, 115.0))
        assert not compiled.weights_on_chip
        listing = disassemble(assemble(compiled))
        fetches = [i for i in listing if i.opcode == Opcode.DRAM_FETCH]
        weight_layers = len(net.conv_layers()) + len(net.linear_layers())
        assert len(fetches) == weight_layers
        total_kb = sum(i.operands["kilobits"] for i in fetches)
        assert total_kb == pytest.approx(
            net.num_parameters * 3 / 1024, rel=0.01)


class TestEnergyBreakdown:
    def _trace(self, streaming=False):
        net = small_net()
        config = AcceleratorConfig.for_network(net)
        if streaming:
            config = AcceleratorConfig(
                num_conv_units=config.num_conv_units,
                conv_unit=config.conv_unit, pool_unit=config.pool_unit,
                memory=MemoryConfig(onchip_weight_capacity=1))
        compiled = compile_network(net, config)
        controller = Controller(compiled)
        image = np.random.default_rng(0).random(net.input_shape)
        _, trace = controller.run_image(image)
        return trace

    def test_breakdown_positive_and_consistent(self):
        breakdown = trace_energy(self._trace())
        assert breakdown.compute_pj > 0
        assert breakdown.onchip_memory_pj > 0
        assert breakdown.dram_pj == 0.0  # weights on chip
        assert breakdown.total_pj == pytest.approx(
            breakdown.compute_pj + breakdown.onchip_memory_pj
            + breakdown.dram_pj + breakdown.accumulator_pj)

    def test_dram_dominates_when_streaming(self):
        """Per-bit DRAM energy is ~100x BRAM: streaming must show up."""
        on_chip = trace_energy(self._trace(streaming=False))
        streamed = trace_energy(self._trace(streaming=True))
        assert streamed.dram_pj > 0
        assert streamed.total_pj > on_chip.total_pj
        assert streamed.dominant() == "dram"

    def test_adder_vs_multiplier_argument(self):
        """The paper's adder-based datapath: compute energy with adders
        must be far below the same op count on DSP multipliers."""
        constants = EnergyConstants()
        trace = self._trace()
        adder_energy = trace.total_adder_ops * constants.adder_op_pj
        dsp_energy = trace.total_adder_ops * constants.multiplier_op_pj
        assert dsp_energy / adder_energy > 5.0


class TestEventDrivenBaseline:
    def test_cost_scales_with_spikes(self):
        net = small_net()
        snn = SNNModel(net)
        dark = np.zeros((1,) + net.input_shape)
        bright = np.full((1,) + net.input_shape, 0.9)
        _, stats_dark = snn.forward_spikes(dark, collect_stats=True)
        _, stats_bright = snn.forward_spikes(bright, collect_stats=True)
        est_dark = estimate_event_driven(net, stats_dark.spikes_per_layer)
        est_bright = estimate_event_driven(net,
                                           stats_bright.spikes_per_layer)
        assert est_bright.total_events >= est_dark.total_events
        assert est_bright.cycles >= est_dark.cycles

    def test_parallelism_reduces_latency(self):
        net = small_net()
        snn = SNNModel(net)
        images = np.random.default_rng(0).random((1,) + net.input_shape)
        _, stats = snn.forward_spikes(images, collect_stats=True)
        serial = estimate_event_driven(
            net, stats.spikes_per_layer,
            EventDrivenConfig(updates_per_cycle=1))
        wide = estimate_event_driven(
            net, stats.spikes_per_layer,
            EventDrivenConfig(updates_per_cycle=64))
        assert wide.cycles < serial.cycles

    def test_conv_fanout_exceeds_linear(self):
        """Event-driven engines pay kernel-sized fan-out on conv layers —
        the structural reason they target linear-only networks."""
        from repro.baselines.event_driven import _layer_fanout
        net = small_net()
        conv = net.conv_layers()[0]
        linear = net.linear_layers()[0]
        assert _layer_fanout(conv) == 4 * 9
        assert _layer_fanout(linear) == 12

"""Sweep-driver determinism and hardware-in-the-loop accuracy.

The contracts pinned here:

* any worker count and any shard size merge to bit-identical
  predictions, accuracies and trace counters (the sharded sweep is a
  pure re-scheduling of the single-process run);
* ``Accelerator.evaluate`` equals ``SNNModel.accuracy`` (the engine
  equivalence contract carried through to dataset scoring);
* compiled state and traces are picklable, so work can cross process
  boundaries;
* the persistent result store keys include the backend name, so
  switching engines can never serve a foreign result.
"""

import pickle

import numpy as np
import pytest

from repro.core import (
    Accelerator,
    AcceleratorConfig,
    Controller,
    TraceMerge,
    compile_network,
    create_engine,
    trace_energy,
)
from repro.data.dataset import Dataset
from repro.errors import ConfigurationError, ShapeError
from repro.harness import ArtifactStore, ExperimentRunner, ExperimentSettings
from repro.harness.sweep import (
    SweepDriver,
    SweepTask,
    TaskOutcome,
    shard_tasks,
)
from repro.models import performance_network
from repro.snn import SNNModel


def tiny_network(rng, num_steps=3):
    return performance_network(
        [("conv", 4, 3, 1, 1), ("pool", 2), ("flatten",), ("linear", 5)],
        input_shape=(1, 8, 8), num_steps=num_steps,
        seed=int(rng.integers(1 << 16)))


def tiny_task(rng, key="cell", num_images=18, backend="vectorized"):
    net = tiny_network(rng)
    images = rng.random((num_images,) + net.input_shape)
    labels = rng.integers(0, 5, size=num_images)
    return SweepTask(key=key, network=net,
                     config=AcceleratorConfig.for_network(net),
                     images=images, labels=labels, backend=backend)


class TestSharding:
    def test_shard_cover_and_order(self, rng):
        task = tiny_task(rng, num_images=11)
        units = shard_tasks([task], shard_size=4)
        assert [(u.start, u.stop) for u in units] == [(0, 4), (4, 8),
                                                      (8, 11)]
        assert all(u.task_key == "cell" for u in units)

    def test_bad_shard_size_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            shard_tasks([tiny_task(rng)], shard_size=0)

    def test_task_validation(self, rng):
        net = tiny_network(rng)
        with pytest.raises(ShapeError):
            SweepTask(key="bad", network=net,
                      config=AcceleratorConfig.for_network(net),
                      images=rng.random((3,) + net.input_shape),
                      labels=rng.integers(0, 5, size=4))
        with pytest.raises(ConfigurationError):
            SweepTask(key="empty", network=net,
                      config=AcceleratorConfig.for_network(net),
                      images=rng.random((0,) + net.input_shape),
                      labels=rng.integers(0, 5, size=0))


class TestDeterminism:
    def test_workers_and_shard_sizes_identical(self, rng):
        """workers=1 vs workers=4, any shard size: bit-identical merges."""
        task = tiny_task(rng, num_images=18)
        baseline = SweepDriver(workers=1, shard_size=18).run(
            [task])[task.key]
        for workers, shard_size in ((1, 5), (4, 4), (4, 7)):
            outcome = SweepDriver(workers=workers,
                                  shard_size=shard_size).run(
                [task])[task.key]
            np.testing.assert_array_equal(outcome.predictions,
                                          baseline.predictions)
            assert outcome.correct == baseline.correct
            assert outcome.trace == baseline.trace

    def test_multi_task_sweep_matches_direct_runs(self, rng):
        """A configs-sweep merges each cell as if run alone."""
        tasks = [tiny_task(rng, key=f"cell{i}", num_images=9)
                 for i in range(3)]
        outcomes = SweepDriver(workers=2, shard_size=4).run(tasks)
        assert list(outcomes) == [t.key for t in tasks]
        for task in tasks:
            engine = create_engine(
                "vectorized",
                compile_network(task.network, task.config))
            logits, traces = engine.run_batch(task.images)
            np.testing.assert_array_equal(
                outcomes[task.key].predictions, logits.argmax(axis=1))
            assert outcomes[task.key].trace == TraceMerge.from_traces(
                traces)

    def test_merged_trace_equals_single_process_trace(self, rng):
        task = tiny_task(rng, num_images=10)
        outcome = SweepDriver(workers=4, shard_size=3).run(
            [task])[task.key]
        controller = Controller(
            compile_network(task.network, task.config),
            backend="vectorized")
        _, merged = controller.run_images(task.images)
        assert outcome.trace == merged

    def test_duplicate_keys_rejected(self, rng):
        task = tiny_task(rng)
        with pytest.raises(ConfigurationError):
            SweepDriver().run([task, task])

    def test_empty_work_list_rejected(self):
        with pytest.raises(ConfigurationError):
            SweepDriver().run([])


class TestAdaptiveSharding:
    def test_per_task_shard_sizes(self, rng):
        tasks = [tiny_task(rng, key=f"cell{i}", num_images=10)
                 for i in range(2)]
        units = shard_tasks(tasks, [4, 10])
        starts = {(u.task_index, u.start, u.stop) for u in units}
        assert starts == {(0, 0, 4), (0, 4, 8), (0, 8, 10), (1, 0, 10)}

    def test_shard_size_list_must_match_tasks(self, rng):
        with pytest.raises(ConfigurationError):
            shard_tasks([tiny_task(rng)], [4, 5])
        with pytest.raises(ConfigurationError):
            shard_tasks([tiny_task(rng)], [0])

    def test_adaptive_merge_bit_identical_to_fixed(self, rng):
        """Probe-driven shard boundaries never change the merged result."""
        tasks = [tiny_task(rng, key=f"cell{i}", num_images=17)
                 for i in range(2)]
        baseline = SweepDriver(workers=1, shard_size=17).run(tasks)
        adaptive = SweepDriver(workers=2, shard_size=4,
                               adaptive=True).run(tasks)
        for task in tasks:
            np.testing.assert_array_equal(
                adaptive[task.key].predictions,
                baseline[task.key].predictions)
            assert adaptive[task.key].trace == baseline[task.key].trace
            assert adaptive[task.key].correct == baseline[task.key].correct

    def test_adaptive_summary_records_choices(self, rng):
        tasks = [tiny_task(rng, key=f"cell{i}", num_images=12)
                 for i in range(2)]
        driver = SweepDriver(workers=2, shard_size=6, adaptive=True)
        driver.run(tasks)
        summary = driver.last_summary
        assert summary.adaptive
        assert set(summary.task_shard_sizes) == {t.key for t in tasks}
        for task, size in zip(tasks, summary.task_shard_sizes.values()):
            assert 1 <= size <= task.num_images
        assert summary.num_units == sum(
            -(-t.num_images // summary.task_shard_sizes[t.key])
            for t in tasks)

    def test_fixed_summary_has_no_adaptive_fields(self, rng):
        driver = SweepDriver(workers=1, shard_size=5)
        driver.run([tiny_task(rng, num_images=7)])
        assert not driver.last_summary.adaptive
        assert driver.last_summary.task_shard_sizes is None
        assert driver.last_summary.num_units == 2

    def test_probe_images_validated(self):
        with pytest.raises(ConfigurationError):
            SweepDriver(adaptive=True, probe_images=0)


class TestHardwareAccuracy:
    def test_evaluate_matches_snn_accuracy(self, rng):
        """Accelerator.evaluate == snn.accuracy on a sampled test set."""
        net = tiny_network(rng)
        snn = SNNModel(net)
        dataset = Dataset(rng.random((40,) + net.input_shape),
                          rng.integers(0, 5, size=40), 5)
        accelerator = Accelerator(AcceleratorConfig.for_network(net),
                                  backend="vectorized")
        accelerator.deploy(snn)
        assert accelerator.evaluate(dataset, batch_size=16) \
            == snn.accuracy(dataset)

    def test_sweep_accuracy_matches_evaluate(self, rng):
        task = tiny_task(rng, num_images=30)
        outcome = SweepDriver(workers=2, shard_size=8).run(
            [task])[task.key]
        accelerator = Accelerator(task.config, backend="vectorized")
        accelerator.deploy(SNNModel(task.network))
        dataset = Dataset(task.images, task.labels, 5)
        assert outcome.accuracy == accelerator.evaluate(dataset)


class TestPicklability:
    def test_compiled_model_roundtrip(self, rng):
        """Compiled state crosses process boundaries intact."""
        net = tiny_network(rng)
        compiled = compile_network(net, AcceleratorConfig.for_network(net))
        restored = pickle.loads(pickle.dumps(compiled))
        images = rng.random((2,) + net.input_shape)
        logits, traces = create_engine("vectorized",
                                       compiled).run_batch(images)
        logits2, traces2 = create_engine("vectorized",
                                         restored).run_batch(images)
        np.testing.assert_array_equal(logits, logits2)
        assert (TraceMerge.from_traces(traces)
                == TraceMerge.from_traces(traces2))

    def test_trace_merge_roundtrips(self, rng):
        net = tiny_network(rng)
        engine = create_engine(
            "vectorized",
            compile_network(net, AcceleratorConfig.for_network(net)))
        _, traces = engine.run_batch(rng.random((3,) + net.input_shape))
        merged = TraceMerge.from_traces(traces)
        assert pickle.loads(pickle.dumps(merged)) == merged
        assert TraceMerge.from_dict(merged.to_dict()) == merged


class TestTraceMerge:
    def test_merge_is_shard_invariant(self, rng):
        net = tiny_network(rng)
        engine = create_engine(
            "vectorized",
            compile_network(net, AcceleratorConfig.for_network(net)))
        _, traces = engine.run_batch(rng.random((7,) + net.input_shape))
        whole = TraceMerge.from_traces(traces)
        pieces = TraceMerge.from_traces(traces[:2])
        pieces.merge(TraceMerge.from_traces(traces[2:5]))
        pieces.merge(TraceMerge.from_traces(traces[5:]))
        assert pieces == whole
        assert whole.num_images == 7
        assert whole.total_cycles == sum(t.total_cycles for t in traces)

    def test_energy_from_merge_matches_single_trace(self, rng):
        net = tiny_network(rng)
        engine = create_engine(
            "vectorized",
            compile_network(net, AcceleratorConfig.for_network(net)))
        _, traces = engine.run_batch(rng.random((1,) + net.input_shape))
        single = trace_energy(traces[0])
        merged = trace_energy(TraceMerge.from_traces(traces))
        assert single == merged


class TestResultStore:
    def test_second_run_served_from_store(self, tmp_path, rng):
        task = tiny_task(rng)
        store = ArtifactStore(tmp_path)
        first = SweepDriver(store=store).run([task])[task.key]
        assert not first.cached
        second = SweepDriver(store=store).run([task])[task.key]
        assert second.cached
        np.testing.assert_array_equal(first.predictions,
                                      second.predictions)
        assert first.trace == second.trace
        assert second.accuracy == first.accuracy

    def test_store_keys_include_backend(self, tmp_path, rng):
        """A result computed under one engine is never served to another."""
        store = ArtifactStore(tmp_path)
        ref_task = tiny_task(rng, key="cell", num_images=2,
                             backend="reference")
        vec_task = SweepTask(key="cell", network=ref_task.network,
                             config=ref_task.config,
                             images=ref_task.images,
                             labels=ref_task.labels, backend="vectorized")
        assert SweepDriver.store_key(ref_task) \
            != SweepDriver.store_key(vec_task)
        SweepDriver(store=store).run([ref_task])
        vec_outcome = SweepDriver(store=store).run([vec_task])["cell"]
        assert not vec_outcome.cached  # recomputed, not cross-served
        # Both engines agree anyway — the equivalence contract.
        ref_outcome = TaskOutcome.from_dict(
            store.load_result(SweepDriver.store_key(ref_task)))
        np.testing.assert_array_equal(ref_outcome.predictions,
                                      vec_outcome.predictions)
        assert ref_outcome.trace == vec_outcome.trace

    def test_experiment_runner_score_keys_name_engine(self, tmp_path):
        settings = ExperimentSettings(
            train_count=100, test_count=20, calibration_count=16,
            base_epochs=1, t3_epochs=1, fast=True)
        vec = ExperimentRunner(settings=settings,
                               store=ArtifactStore(tmp_path))
        ref = ExperimentRunner(settings=settings,
                               store=ArtifactStore(tmp_path),
                               score_backend="reference")
        assert vec._score_key("lenet_t3") != ref._score_key("lenet_t3")
        assert "vectorized" in vec._score_key("lenet_t3")
        assert "reference" in ref._score_key("lenet_t3")


class TestProgress:
    def test_progress_ticks_cover_all_units(self, rng):
        task = tiny_task(rng, num_images=10)
        ticks = []
        SweepDriver(workers=1, shard_size=3,
                    progress=ticks.append).run([task])
        assert [p.done_units for p in ticks] == [1, 2, 3, 4]
        assert ticks[-1].done_images == 10
        assert ticks[-1].total_images == 10
        assert ticks[-1].images_per_second > 0

    def test_summary_reports_throughput(self, rng):
        task = tiny_task(rng, num_images=10)
        driver = SweepDriver(workers=2, shard_size=5)
        driver.run([task])
        summary = driver.last_summary
        assert summary.num_tasks == 1
        assert summary.num_units == 2
        assert summary.num_images == 10
        assert summary.cached_tasks == 0
        assert summary.images_per_second > 0

"""Tests for the numpy conv/pool kernels against naive references."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ShapeError
from repro.nn import functional as F


def naive_conv2d(images, kernels, bias, stride, padding):
    """Straightforward quadruple-loop convolution used as the oracle."""
    n, c_in, h, w = images.shape
    c_out, _, kr, kc = kernels.shape
    padded = np.pad(images, ((0, 0), (0, 0), (padding, padding),
                             (padding, padding)))
    h_out = (h + 2 * padding - kr) // stride + 1
    w_out = (w + 2 * padding - kc) // stride + 1
    out = np.zeros((n, c_out, h_out, w_out))
    for i in range(n):
        for o in range(c_out):
            for y in range(h_out):
                for x in range(w_out):
                    patch = padded[i, :, y * stride:y * stride + kr,
                                   x * stride:x * stride + kc]
                    out[i, o, y, x] = (patch * kernels[o]).sum()
            if bias is not None:
                out[i, o] += bias[o]
    return out


class TestConvOutputSize:
    def test_basic(self):
        assert F.conv_output_size(32, 5, 1, 0) == 28
        assert F.conv_output_size(32, 3, 1, 1) == 32
        assert F.conv_output_size(28, 2, 2, 0) == 14

    def test_too_small_raises(self):
        with pytest.raises(ShapeError):
            F.conv_output_size(2, 5, 1, 0)


class TestConv2d:
    @given(
        st.integers(min_value=1, max_value=3),   # batch
        st.integers(min_value=1, max_value=4),   # c_in
        st.integers(min_value=1, max_value=5),   # c_out
        st.sampled_from([(3, 1, 0), (3, 1, 1), (5, 1, 0), (3, 2, 1),
                         (1, 1, 0), (5, 2, 2)]),
        st.integers(min_value=6, max_value=12),  # spatial
    )
    @settings(max_examples=25, deadline=None)
    def test_matches_naive(self, n, c_in, c_out, kparams, size):
        k, stride, padding = kparams
        rng = np.random.default_rng(n * 100 + c_in * 10 + c_out)
        images = rng.normal(size=(n, c_in, size, size))
        kernels = rng.normal(size=(c_out, c_in, k, k))
        bias = rng.normal(size=c_out)
        ours, _ = F.conv2d(images, kernels, bias, stride, padding)
        oracle = naive_conv2d(images, kernels, bias, stride, padding)
        np.testing.assert_allclose(ours, oracle, atol=1e-9)

    def test_channel_mismatch_raises(self):
        with pytest.raises(ShapeError):
            F.conv2d(np.zeros((1, 3, 8, 8)), np.zeros((2, 4, 3, 3)),
                     None, 1, 0)

    def test_gradients_match_numerical(self):
        rng = np.random.default_rng(0)
        images = rng.normal(size=(2, 2, 6, 6))
        kernels = rng.normal(size=(3, 2, 3, 3))
        bias = rng.normal(size=3)
        out, cols = F.conv2d(images, kernels, bias, 1, 1)
        grad_out = rng.normal(size=out.shape)
        gi, gk, gb = F.conv2d_backward(
            grad_out, cols, kernels, images.shape, 1, 1, True)

        eps = 1e-6
        # Spot-check input gradient entries numerically.
        for idx in [(0, 0, 2, 3), (1, 1, 0, 0), (0, 1, 5, 5)]:
            images_p = images.copy()
            images_p[idx] += eps
            lp = (F.conv2d(images_p, kernels, bias, 1, 1)[0]
                  * grad_out).sum()
            images_m = images.copy()
            images_m[idx] -= eps
            lm = (F.conv2d(images_m, kernels, bias, 1, 1)[0]
                  * grad_out).sum()
            assert gi[idx] == pytest.approx((lp - lm) / (2 * eps), rel=1e-4)
        # And kernel gradient entries.
        for idx in [(0, 0, 0, 0), (2, 1, 2, 2)]:
            kp = kernels.copy()
            kp[idx] += eps
            lp = (F.conv2d(images, kp, bias, 1, 1)[0] * grad_out).sum()
            km = kernels.copy()
            km[idx] -= eps
            lm = (F.conv2d(images, km, bias, 1, 1)[0] * grad_out).sum()
            assert gk[idx] == pytest.approx((lp - lm) / (2 * eps), rel=1e-4)
        np.testing.assert_allclose(gb, grad_out.sum(axis=(0, 2, 3)))


class TestIm2colCol2im:
    def test_adjoint_property(self):
        """<im2col(x), y> == <x, col2im(y)> — the defining adjoint pair."""
        rng = np.random.default_rng(3)
        x = rng.normal(size=(2, 3, 7, 7))
        cols = F.im2col(x, (3, 3), 2, 1)
        y = rng.normal(size=cols.shape)
        lhs = (cols * y).sum()
        rhs = (x * F.col2im(y, x.shape, (3, 3), 2, 1)).sum()
        assert lhs == pytest.approx(rhs, rel=1e-10)

    def test_im2col_shape(self):
        cols = F.im2col(np.zeros((2, 3, 8, 8)), (3, 3), 1, 0)
        assert cols.shape == (2, 36, 27)


class TestPooling:
    def test_avg_pool_known(self):
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        out = F.avg_pool2d(x, 2, 2)
        np.testing.assert_allclose(
            out[0, 0], [[2.5, 4.5], [10.5, 12.5]])

    def test_max_pool_known(self):
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        out, arg = F.max_pool2d(x, 2, 2)
        np.testing.assert_allclose(out[0, 0], [[5, 7], [13, 15]])

    def test_avg_pool_backward_spreads_evenly(self):
        grad = F.avg_pool2d_backward(
            np.ones((1, 1, 2, 2)), (1, 1, 4, 4), 2, 2)
        np.testing.assert_allclose(grad, np.full((1, 1, 4, 4), 0.25))

    def test_max_pool_backward_routes_to_argmax(self):
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        out, arg = F.max_pool2d(x, 2, 2)
        grad = F.max_pool2d_backward(
            np.ones((1, 1, 2, 2)), arg, x.shape, 2, 2)
        assert grad.sum() == 4
        assert grad[0, 0, 1, 1] == 1  # argmax of the first window (value 5)

    def test_avg_pool_numerical_gradient(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(1, 2, 6, 6))
        grad_out = rng.normal(size=(1, 2, 3, 3))
        gi = F.avg_pool2d_backward(grad_out, x.shape, 2, 2)
        eps = 1e-6
        idx = (0, 1, 3, 2)
        xp = x.copy()
        xp[idx] += eps
        xm = x.copy()
        xm[idx] -= eps
        num = ((F.avg_pool2d(xp, 2, 2) - F.avg_pool2d(xm, 2, 2))
               * grad_out).sum() / (2 * eps)
        assert gi[idx] == pytest.approx(num, rel=1e-5)

"""Regression tests pinning the latency/power/resource models to the
paper's published anchor points, plus model-shape properties.

These are the reproduction's quantitative guardrails: if a change to the
cycle formulas or calibration constants drifts the models away from
Table I/II/III, these tests fail.
"""

import numpy as np
import pytest

from repro.core import (
    AcceleratorConfig,
    LatencyModel,
    PowerModel,
    ResourceModel,
    channels_per_pass,
    conv_group_count,
    plan_bram,
)
from repro.models import performance_network, vgg11_performance_network


def lenet_network(num_steps=3):
    """LeNet-5 geometry (training-free stand-in for calibration tests)."""
    return performance_network(
        [("conv", 6, 5, 1, 0), ("pool", 2), ("conv", 16, 5, 1, 0),
         ("pool", 2), ("conv", 120, 5, 1, 0), ("flatten",),
         ("linear", 120), ("linear", 84), ("linear", 10)],
        input_shape=(1, 32, 32), num_steps=num_steps)


PAPER_TABLE2_LATENCY = {1: 1063.0, 2: 648.0, 4: 450.0, 8: 370.0}
PAPER_TABLE2_POWER = {1: 3.07, 2: 3.09, 4: 3.17, 8: 3.28}
PAPER_TABLE2_LUTS = {1: 11_000, 2: 15_000, 4: 24_000, 8: 42_000}
PAPER_TABLE2_FFS = {1: 10_000, 2: 14_000, 4: 23_000, 8: 39_000}


class TestLatencyCalibration:
    @pytest.mark.parametrize("units", [1, 2, 4, 8])
    def test_table2_latency_within_10pct(self, units):
        config = AcceleratorConfig().with_units(units)
        latency = LatencyModel(config).latency_us(lenet_network(3))
        paper = PAPER_TABLE2_LATENCY[units]
        assert abs(latency - paper) / paper < 0.10

    def test_table1_latency_linear_in_t(self):
        """Table I: latency scales ~linearly with T (648 -> 1271 us)."""
        config = AcceleratorConfig()
        model = LatencyModel(config)
        lats = [model.latency_us(lenet_network(t)) for t in (3, 4, 5, 6)]
        diffs = np.diff(lats)
        assert np.all(diffs > 0)
        # Uniform per-step increments (within 2%):
        assert diffs.std() / diffs.mean() < 0.02
        # Paper's slope is ~208 us/step at 100 MHz:
        assert abs(diffs.mean() - 208.0) / 208.0 < 0.10

    def test_latency_improves_sublinearly_with_units(self):
        """Table II's headline: 2x units never halve the latency."""
        model3 = lenet_network(3)
        lat = {u: LatencyModel(AcceleratorConfig().with_units(u))
               .total_cycles(model3) for u in (1, 2, 4, 8)}
        assert lat[2] < lat[1] and lat[4] < lat[2] and lat[8] < lat[4]
        assert lat[2] > lat[1] / 2
        assert lat[4] > lat[2] / 2
        assert lat[8] > lat[4] / 2

    def test_vgg_latency_matches_table3_order(self):
        """Paper: 210 ms at 115 MHz with 8 units; we must land within
        ~35% and preserve the >4 fps claim."""
        net = vgg11_performance_network(num_steps=6)
        config = AcceleratorConfig.for_network(net, num_conv_units=8,
                                               clock_mhz=115.0)
        model = LatencyModel(config)
        latency_ms = model.latency_us(net, weights_on_chip=False) / 1000
        assert 135 < latency_ms < 285
        assert model.throughput_fps(net, weights_on_chip=False) > 4.0

    def test_lenet_200mhz_matches_table3_row(self):
        """Paper row 4: LeNet-5, T=4, 200 MHz, 4 units -> 294 us."""
        config = AcceleratorConfig().with_units(4).with_clock(200.0)
        latency = LatencyModel(config).latency_us(lenet_network(4))
        assert abs(latency - 294.0) / 294.0 < 0.15

    def test_dram_streaming_adds_cycles(self):
        net = vgg11_performance_network(num_steps=6)
        config = AcceleratorConfig.for_network(net, 8, 115.0)
        model = LatencyModel(config)
        on_chip = model.total_cycles(net, weights_on_chip=True)
        streamed = model.total_cycles(net, weights_on_chip=False)
        # 28.5M 3-bit weights over a 64-bit bus: ~1.3M extra cycles.
        assert streamed - on_chip > 1_000_000


class TestChannelPacking:
    def test_collapsed_maps_pack_many_channels(self):
        net = lenet_network()
        conv3 = net.conv_layers()[2]   # 120C5 on 5x5 -> 1x1 outputs
        config = AcceleratorConfig()
        assert channels_per_pass(conv3, config) == 6  # floor(34 / 5)

    def test_wide_maps_do_not_pack(self):
        net = lenet_network()
        conv1 = net.conv_layers()[0]   # 28-wide output rows
        assert channels_per_pass(conv1, AcceleratorConfig()) == 1

    def test_group_count_divides_by_units(self):
        net = lenet_network()
        conv1 = net.conv_layers()[0]
        assert conv_group_count(conv1, AcceleratorConfig().with_units(1)) == 6
        assert conv_group_count(conv1, AcceleratorConfig().with_units(2)) == 3
        assert conv_group_count(conv1, AcceleratorConfig().with_units(8)) == 1

    def test_too_narrow_unit_rejected(self):
        from repro.core.config import ConvUnitConfig
        from repro.errors import CompilationError
        net = lenet_network()
        conv1 = net.conv_layers()[0]
        narrow = AcceleratorConfig(conv_unit=ConvUnitConfig(columns=20,
                                                            rows=5))
        with pytest.raises(CompilationError):
            channels_per_pass(conv1, narrow)


class TestPowerCalibration:
    @pytest.mark.parametrize("units", [1, 2, 4, 8])
    def test_table2_power_within_3pct(self, units):
        config = AcceleratorConfig().with_units(units)
        bram = plan_bram(lenet_network(3), config.memory, True)
        power = PowerModel(config).average_power_w(bram_mbit=bram.total_mbit)
        paper = PAPER_TABLE2_POWER[units]
        assert abs(power - paper) / paper < 0.03

    def test_table3_lenet_power(self):
        """Paper: 3.4 W at 200 MHz with 4 units."""
        config = AcceleratorConfig().with_units(4).with_clock(200.0)
        power = PowerModel(config).average_power_w(bram_mbit=0.1)
        assert abs(power - 3.4) / 3.4 < 0.06

    def test_table3_vgg_power_with_dram(self):
        """Paper: 4.9 W at 115 MHz, 8 units, DRAM streaming."""
        net = vgg11_performance_network(6)
        config = AcceleratorConfig.for_network(net, 8, 115.0)
        bram = plan_bram(net, config.memory, False)
        power = PowerModel(config).average_power_w(
            bram_mbit=bram.total_mbit, dram_active=True)
        assert abs(power - 4.9) / 4.9 < 0.15

    def test_power_monotone_in_units_and_clock(self):
        p = [PowerModel(AcceleratorConfig().with_units(u)).average_power_w()
             for u in (1, 2, 4, 8)]
        assert p == sorted(p)
        slow = PowerModel(AcceleratorConfig()).average_power_w()
        fast = PowerModel(AcceleratorConfig().with_clock(200)).average_power_w()
        assert fast > slow

    def test_energy_per_inference(self):
        model = PowerModel(AcceleratorConfig())
        energy = model.energy_per_inference_mj(latency_us=648.0)
        assert energy == pytest.approx(
            model.average_power_w() * 0.648, rel=1e-9)


class TestResourceCalibration:
    @pytest.mark.parametrize("units", [1, 2, 4, 8])
    def test_table2_luts_within_12pct(self, units):
        res = ResourceModel(AcceleratorConfig().with_units(units)).estimate()
        paper = PAPER_TABLE2_LUTS[units]
        assert abs(res.luts - paper) / paper < 0.12

    @pytest.mark.parametrize("units", [1, 2, 4, 8])
    def test_table2_ffs_within_12pct(self, units):
        res = ResourceModel(AcceleratorConfig().with_units(units)).estimate()
        paper = PAPER_TABLE2_FFS[units]
        assert abs(res.ffs - paper) / paper < 0.12

    def test_resources_scale_linearly_with_units(self):
        """Paper: "hardware resources scale almost linear"."""
        luts = {u: ResourceModel(AcceleratorConfig().with_units(u))
                .estimate().luts for u in (1, 2, 4, 8)}
        per_unit = (luts[8] - luts[4]) / 4
        base = luts[1] - per_unit
        # Extrapolation from the top of the sweep stays close at U=2.
        assert abs(luts[2] - (base + 2 * per_unit)) / luts[2] < 0.15

    def test_dram_controller_only_when_streaming(self):
        model = ResourceModel(AcceleratorConfig())
        on = model.estimate(weights_on_chip=True)
        off = model.estimate(weights_on_chip=False)
        assert off.luts > on.luts
        assert off.dram_luts > 0 and on.dram_luts == 0

    def test_bigger_arrays_cost_more(self):
        from repro.core.config import ConvUnitConfig
        small = ResourceModel(AcceleratorConfig(
            conv_unit=ConvUnitConfig(columns=14, rows=3))).estimate()
        large = ResourceModel(AcceleratorConfig(
            conv_unit=ConvUnitConfig(columns=32, rows=5))).estimate()
        assert large.luts > small.luts
        assert large.conv_unit_ffs > small.conv_unit_ffs

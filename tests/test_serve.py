"""The serving layer: coalescing determinism, policies, backpressure, SLOs.

The contracts pinned here:

* batching is a pure re-grouping — the same request set served through
  ``max_batch=1`` and through coalesced micro-batches yields identical
  predictions and identical summed trace counters, both equal to a
  direct batched ``Accelerator`` run;
* warm-instance reuse (the engine cache) is bit-identical to a cold
  compile;
* the bounded queue applies real backpressure (``wait=False`` rejects,
  ``wait=True`` blocks) and graceful shutdown drains in-flight work;
* batch policies respect their knobs (``max_batch`` cap, greedy
  ``max_wait``, deadline headroom shrinking as service estimates grow);
* the TCP transport round-trips predictions, metrics and errors.

No pytest-asyncio in the toolchain: tests drive coroutines with
``asyncio.run`` explicitly.
"""

import asyncio
import json

import numpy as np
import pytest

from repro.core import (
    Accelerator,
    AcceleratorConfig,
    TraceMerge,
    clear_engine_cache,
    compile_network,
    create_engine,
    engine_cache_stats,
    warm_engine,
)
from repro.errors import (
    BackpressureError,
    ConfigurationError,
    RequestTimeoutError,
    ServeError,
    ShapeError,
)
from repro.models import performance_network
from repro.serve import (
    DeadlinePolicy,
    EnginePool,
    GreedyPolicy,
    InferenceServer,
    LoadGenerator,
    ServerMetrics,
    TcpClient,
    available_policies,
    create_policy,
    start_tcp_server,
)
from repro.snn import SNNModel


def tiny_network(rng, num_steps=3):
    return performance_network(
        [("conv", 4, 3, 1, 1), ("pool", 2), ("flatten",), ("linear", 5)],
        input_shape=(1, 8, 8), num_steps=num_steps,
        seed=int(rng.integers(1 << 16)))


def tiny_images(rng, network, count):
    return rng.random((count,) + network.input_shape)


def direct_run(network, images):
    """Ground truth: one batched run on a cold-compiled engine."""
    engine = create_engine(
        "vectorized",
        compile_network(network, AcceleratorConfig.for_network(network)))
    return engine.run_batch(images)


def serve(network, images, **server_kwargs):
    """Serve a request set in-process; returns (results, snapshot)."""

    async def main():
        async with InferenceServer(network, **server_kwargs) as server:
            results = await server.submit_many(images)
            return results, server.snapshot()

    return asyncio.run(main())


class TestBatchingDeterminism:
    def test_coalesced_equals_serial_equals_direct(self, rng):
        """batch=1 serving, coalesced serving and Accelerator.run agree."""
        net = tiny_network(rng)
        images = tiny_images(rng, net, 20)
        logits, traces = direct_run(net, images)

        serial, _ = serve(net, images, max_batch=1, max_wait_ms=0.0)
        coalesced, snapshot = serve(net, images, max_batch=8,
                                    max_wait_ms=20.0)
        assert snapshot.mean_batch_size > 1  # coalescing actually happened

        expected = logits.argmax(axis=1)
        for results in (serial, coalesced):
            np.testing.assert_array_equal(
                [r.prediction for r in results], expected)
            summed = TraceMerge()
            for result in results:
                summed.merge(result.trace)
            assert summed == TraceMerge.from_traces(traces)

    def test_per_request_accounting_matches_single_image(self, rng):
        """A request's trace slice equals its own single-image run."""
        net = tiny_network(rng)
        images = tiny_images(rng, net, 6)
        results, _ = serve(net, images, max_batch=6, max_wait_ms=20.0)
        _, traces = direct_run(net, images)
        for i, result in enumerate(results):
            single = TraceMerge.from_traces([traces[i]])
            assert result.trace == single
            assert result.cycles == single.total_cycles
            assert result.energy_pj > 0
            assert result.model_latency_us > 0
            np.testing.assert_array_equal(result.logits,
                                          direct_run(net, images)[0][i])

    def test_results_keep_submission_order(self, rng):
        net = tiny_network(rng)
        images = tiny_images(rng, net, 12)
        results, _ = serve(net, images, max_batch=4)
        assert [r.request_id for r in results] == list(range(12))

    def test_process_mode_matches_thread_mode(self, rng):
        net = tiny_network(rng)
        images = tiny_images(rng, net, 8)
        thread_results, _ = serve(net, images, max_batch=4)
        process_results, _ = serve(net, images, max_batch=4,
                                   mode="process")
        np.testing.assert_array_equal(
            [r.prediction for r in process_results],
            [r.prediction for r in thread_results])
        for a, b in zip(process_results, thread_results):
            assert a.trace == b.trace


class TestWarmCache:
    def test_warm_engine_dedupes_by_content(self, rng):
        clear_engine_cache()
        net_a = tiny_network(rng)
        # Same geometry and weights (same rng stream restart): rebuild
        # an identical network object.
        config = AcceleratorConfig.for_network(net_a)
        first = warm_engine(net_a, config)
        again = warm_engine(net_a, config)
        assert first is again
        stats = engine_cache_stats()
        assert stats["engine_hits"] >= 1
        assert stats["engine_entries"] == 1

    def test_warm_reuse_bit_identical_to_cold(self, rng):
        clear_engine_cache()
        net = tiny_network(rng)
        config = AcceleratorConfig.for_network(net)
        images = tiny_images(rng, net, 4)
        cold_logits, cold_traces = direct_run(net, images)
        engine = warm_engine(net, config)
        for _ in range(2):  # reuse, not just first use
            logits, traces = engine.run_batch(images)
            np.testing.assert_array_equal(logits, cold_logits)
            assert (TraceMerge.from_traces(traces)
                    == TraceMerge.from_traces(cold_traces))

    def test_warm_accelerator_deploy_reuses_compile(self, rng):
        clear_engine_cache()
        net = tiny_network(rng)
        config = AcceleratorConfig.for_network(net)
        snn = SNNModel(net)
        first = Accelerator(config, backend="vectorized", warm=True)
        first.deploy(snn)
        second = Accelerator(config, backend="vectorized", warm=True)
        second.deploy(snn)
        assert first.compiled is second.compiled
        images = tiny_images(rng, net, 3)
        warm_logits, _ = second.run_logits(images)
        cold_logits, _ = direct_run(net, images)
        np.testing.assert_array_equal(warm_logits, cold_logits)

    def test_compile_cache_shared_across_calibrations(self, rng):
        """warm_compile ignores calibration: compilation can't see it."""
        import dataclasses

        from repro.core import DEFAULT_LATENCY, warm_compile

        clear_engine_cache()
        net = tiny_network(rng)
        config = AcceleratorConfig.for_network(net)
        other = dataclasses.replace(DEFAULT_LATENCY,
                                    conv_row_overhead=99)
        assert warm_compile(net, config) is warm_compile(net, config)
        assert warm_engine(net, config).compiled is \
            warm_engine(net, config, calibration=other).compiled
        # The engines themselves differ — calibration changes traces.
        assert warm_engine(net, config) is not \
            warm_engine(net, config, calibration=other)
        assert engine_cache_stats()["compiled_entries"] == 1

    def test_different_content_not_shared(self, rng):
        clear_engine_cache()
        net_a = tiny_network(rng)
        net_b = tiny_network(rng)  # new seed draw -> different weights
        config_a = AcceleratorConfig.for_network(net_a)
        config_b = AcceleratorConfig.for_network(net_b)
        assert warm_engine(net_a, config_a) is not \
            warm_engine(net_b, config_b)


class TestPolicies:
    def test_registry(self):
        assert "greedy" in available_policies()
        assert "deadline" in available_policies()
        with pytest.raises(ConfigurationError):
            create_policy("lifo")
        policy = GreedyPolicy(max_batch=4)
        assert create_policy(policy) is policy

    def test_knob_validation(self):
        with pytest.raises(ConfigurationError):
            GreedyPolicy(max_batch=0)
        with pytest.raises(ConfigurationError):
            GreedyPolicy(max_wait_ms=-1.0)
        with pytest.raises(ConfigurationError):
            DeadlinePolicy(slo_ms=0.0)

    def test_greedy_deadline_is_arrival_plus_wait(self):
        policy = GreedyPolicy(max_batch=8, max_wait_ms=10.0)
        assert policy.flush_deadline(100.0) == pytest.approx(100.0 + 0.01)

    def test_deadline_headroom_shrinks_with_service_time(self):
        policy = DeadlinePolicy(max_batch=8, slo_ms=100.0)
        before = policy.flush_deadline(0.0)
        # Observe slow full batches: the estimate rises, so the policy
        # must flush earlier to protect the SLO.
        for _ in range(10):
            policy.observe(batch_size=8, service_s=0.06)
        after = policy.flush_deadline(0.0)
        assert after < before
        assert policy.expected_service_s > 0.05

    def test_deadline_never_negative_headroom(self):
        policy = DeadlinePolicy(max_batch=8, slo_ms=10.0)
        for _ in range(10):
            policy.observe(batch_size=8, service_s=1.0)  # way over SLO
        # Deadline degenerates to "flush immediately", never to the past
        # beyond the arrival time itself.
        assert policy.flush_deadline(50.0) == pytest.approx(50.0)

    def test_max_batch_respected_under_burst(self, rng):
        net = tiny_network(rng)
        images = tiny_images(rng, net, 30)
        _, snapshot = serve(net, images, max_batch=4, max_wait_ms=50.0)
        assert max(snapshot.batch_size_histogram) <= 4

    def test_deadline_policy_meets_generous_slo(self, rng):
        """End to end: moderate load, p99 under a CI-safe SLO."""
        net = tiny_network(rng)
        images = tiny_images(rng, net, 40)

        async def main():
            server = InferenceServer(net, policy="deadline",
                                     max_batch=8, slo_ms=500.0)
            async with server:
                await LoadGenerator(server.submit,
                                    rate_rps=300.0).run(images)
                return server.snapshot()

        snapshot = asyncio.run(main())
        assert snapshot.completed == 40
        assert snapshot.latency_ms["p99"] < 500.0


class TestServingHardening:
    """Per-request timeouts and priorities in the batch policies."""

    def test_timeout_fails_waiting_request(self, rng):
        """A request expires while coalescing waits for more arrivals."""
        net = tiny_network(rng)
        image = tiny_images(rng, net, 1)[0]

        async def main():
            # Greedy policy with a huge wait: without the per-request
            # deadline the lone request would sit for 10 s.
            server = InferenceServer(net, max_batch=8,
                                     max_wait_ms=10_000.0)
            async with server:
                started = asyncio.get_running_loop().time()
                with pytest.raises(RequestTimeoutError):
                    await server.submit(image, timeout_ms=50.0)
                waited = asyncio.get_running_loop().time() - started
                return waited, server.metrics.timed_out, \
                    server.snapshot().to_dict()

        waited, timed_out, payload = asyncio.run(main())
        assert waited < 5.0          # expired promptly, not at flush
        assert timed_out == 1
        assert payload["timed_out"] == 1

    def test_timeout_zero_rejected(self, rng):
        net = tiny_network(rng)

        async def main():
            async with InferenceServer(net) as server:
                with pytest.raises(ServeError):
                    await server.submit(tiny_images(rng, net, 1)[0],
                                        timeout_ms=0.0)

        asyncio.run(main())

    def test_fast_requests_unaffected_by_timeout(self, rng):
        """A generous timeout never changes results."""
        net = tiny_network(rng)
        images = tiny_images(rng, net, 6)
        logits, _ = direct_run(net, images)

        async def main():
            async with InferenceServer(net, max_batch=4) as server:
                return await server.submit_many(images,
                                                timeout_ms=30_000.0)

        results = asyncio.run(main())
        np.testing.assert_array_equal([r.prediction for r in results],
                                      logits.argmax(axis=1))

    def test_priority_selects_batch_membership(self):
        """The policies' shared select(): high priority first, FIFO
        within a level, arrival order inside the batch."""
        import time as _time
        from dataclasses import dataclass as _dataclass

        from repro.serve.batcher import Batcher

        @_dataclass
        class FakeRequest:
            name: str
            priority: int
            enqueued_at: float
            deadline: float | None = None

        async def main():
            queue = asyncio.Queue()
            policy = GreedyPolicy(max_batch=2, max_wait_ms=0.0)
            batcher = Batcher(queue, policy)
            now = _time.perf_counter()
            for i, (name, priority) in enumerate(
                    [("a", 0), ("b", 0), ("c", 5), ("d", 5)]):
                queue.put_nowait(FakeRequest(name, priority, now + i / 1e6))
            first = await batcher.next_batch()
            second = await batcher.next_batch()
            return [r.name for r in first], [r.name for r in second]

        first, second = asyncio.run(main())
        assert first == ["c", "d"]    # high priority, arrival order
        assert second == ["a", "b"]   # leftovers drain next

    def test_waiting_buffer_bounded_by_two_batches(self):
        """Overflow stays in the bounded intake queue (backpressure),
        not in the batcher's lookahead buffer."""
        import time as _time
        from dataclasses import dataclass as _dataclass

        from repro.serve.batcher import Batcher

        @_dataclass
        class FakeRequest:
            priority: int
            enqueued_at: float
            deadline: float | None = None

        async def main():
            queue = asyncio.Queue()
            policy = GreedyPolicy(max_batch=2, max_wait_ms=0.0)
            batcher = Batcher(queue, policy)
            now = _time.perf_counter()
            for i in range(20):
                queue.put_nowait(FakeRequest(0, now + i / 1e6))
            batch = await batcher.next_batch()
            return len(batch), batcher.waiting, queue.qsize()

        batch_len, waiting, queued = asyncio.run(main())
        assert batch_len == 2
        assert waiting <= 2          # capacity (4) minus the flush (2)
        assert queued == 20 - batch_len - waiting

    def test_priority_end_to_end_results_unchanged(self, rng):
        """Priorities re-order dispatch, never answers."""
        net = tiny_network(rng)
        images = tiny_images(rng, net, 8)
        logits, _ = direct_run(net, images)

        async def main():
            async with InferenceServer(net, max_batch=4,
                                       max_wait_ms=20.0) as server:
                tasks = [asyncio.create_task(
                    server.submit(image, priority=i % 3))
                    for i, image in enumerate(images)]
                return await asyncio.gather(*tasks)

        results = asyncio.run(main())
        np.testing.assert_array_equal([r.prediction for r in results],
                                      logits.argmax(axis=1))

    def test_timeout_propagates_over_tcp_as_typed_error(self, rng):
        """Satellite contract: a timed-out request answers with a
        structured error instead of hanging the connection."""
        net = tiny_network(rng)
        image = tiny_images(rng, net, 1)[0]

        async def main():
            server = InferenceServer(net, max_batch=8,
                                     max_wait_ms=10_000.0)
            async with server:
                tcp, port = await start_tcp_server(server)
                try:
                    async with TcpClient(port=port) as client:
                        with pytest.raises(RequestTimeoutError):
                            await asyncio.wait_for(
                                client.infer(image, timeout_ms=50.0),
                                timeout=5)
                        # The connection survives the error.
                        assert await client.ping()
                finally:
                    tcp.close()
                    await tcp.wait_closed()

        asyncio.run(main())


class TestServingOnFabric:
    """The engine pool is a policy layer over repro.runtime."""

    def test_remote_lane_crash_mid_serving_recovers(self, rng):
        """Satellite contract: a worker dying mid-batch must not
        deadlock the pool — requests complete on a healthy lane and
        the crash is surfaced in the metrics."""
        from repro.runtime import WorkerServer

        net = tiny_network(rng)
        images = tiny_images(rng, net, 4)
        logits, _ = direct_run(net, images)

        server = WorkerServer().start()
        spec = f"127.0.0.1:{server.port}"
        server.close()  # the host is already gone when serving starts

        async def main():
            inference = InferenceServer(
                net, max_batch=2, workers=[spec, "thread"])
            async with inference:
                results = await inference.submit_many(images)
                return results, inference.snapshot().to_dict()

        results, payload = asyncio.run(main())
        np.testing.assert_array_equal([r.prediction for r in results],
                                      logits.argmax(axis=1))
        assert payload["worker_crashes"] == 1

    def test_remote_lane_serves_bit_identical(self, rng):
        from repro.runtime import WorkerServer

        net = tiny_network(rng)
        images = tiny_images(rng, net, 6)
        logits, traces = direct_run(net, images)

        async def main():
            with WorkerServer() as worker:
                spec = f"127.0.0.1:{worker.port}"
                async with InferenceServer(net, max_batch=4,
                                           workers=[spec]) as inference:
                    return await inference.submit_many(images)

        results = asyncio.run(main())
        np.testing.assert_array_equal([r.prediction for r in results],
                                      logits.argmax(axis=1))
        summed = TraceMerge()
        for result in results:
            summed.merge(result.trace)
        assert summed == TraceMerge.from_traces(traces)

    def test_snapshot_surfaces_fabric_counters_and_ledger(self, rng):
        """A fabric-backed server's snapshot carries the scheduling
        counters and the exactly-once ledger state under ``fabric``."""
        net = tiny_network(rng)
        images = tiny_images(rng, net, 4)

        async def main():
            async with InferenceServer(net, max_batch=2,
                                       workers=["thread"]) as inference:
                await inference.submit_many(images)
                return inference.snapshot().to_dict()

        payload = asyncio.run(main())
        fabric = payload["fabric"]
        for counter in ("requeued", "retries", "poisoned", "deduped"):
            assert fabric[counter] == 0
        assert fabric["ledger"]["capacity"] >= 1
        assert fabric["ledger"]["duplicates"] == 0


class _GatedPool(EnginePool):
    """An engine pool that holds every batch until the test opens it."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.gate = None  # created inside the running loop

    async def run_batch(self, images, **kwargs):
        await self.gate.wait()
        return await super().run_batch(images, **kwargs)


class TestBackpressureAndLifecycle:
    def test_submit_requires_running_server(self, rng):
        net = tiny_network(rng)
        server = InferenceServer(net)

        async def main():
            with pytest.raises(ServeError):
                await server.submit(tiny_images(rng, net, 1)[0])

        asyncio.run(main())

    def test_shape_validated_per_request(self, rng):
        net = tiny_network(rng)

        async def main():
            async with InferenceServer(net) as server:
                with pytest.raises(ShapeError):
                    await server.submit(np.zeros((2, 8, 8)))
                with pytest.raises(ShapeError):
                    await server.submit(np.zeros((1, 1, 8, 8)))

        asyncio.run(main())

    def test_bounded_queue_rejects_nowait_submits(self, rng):
        net = tiny_network(rng)
        images = tiny_images(rng, net, 24)

        async def main():
            server = InferenceServer(net, max_batch=1, queue_depth=2)
            server.pool = _GatedPool(net, server.config)
            async with server:
                server.pool.gate = asyncio.Event()
                tasks = [asyncio.create_task(
                    server.submit(image, wait=False))
                    for image in images]
                await asyncio.sleep(0.05)  # let the queue jam
                server.pool.gate.set()
                settled = await asyncio.gather(*tasks,
                                               return_exceptions=True)
                return settled, server.metrics.rejected

        settled, rejected = asyncio.run(main())
        bounced = [s for s in settled
                   if isinstance(s, BackpressureError)]
        completed = [s for s in settled
                     if not isinstance(s, BaseException)]
        assert bounced and completed
        assert rejected == len(bounced)
        assert len(bounced) + len(completed) == 24

    def test_graceful_stop_drains_pending_work(self, rng):
        net = tiny_network(rng)
        images = tiny_images(rng, net, 10)

        async def main():
            server = InferenceServer(net, max_batch=4, max_wait_ms=20.0)
            await server.start()
            pending = [asyncio.create_task(server.submit(image))
                       for image in images]
            await asyncio.sleep(0)  # let every submit reach the queue
            await server.stop()  # drain=True: everything must resolve
            return await asyncio.gather(*pending)

        results = asyncio.run(main())
        logits, _ = direct_run(net, images)
        np.testing.assert_array_equal([r.prediction for r in results],
                                      logits.argmax(axis=1))

    def test_hard_stop_fails_in_flight_requests_instead_of_hanging(
            self, rng):
        """stop(drain=False) must resolve futures of executing batches."""
        net = tiny_network(rng)

        async def main():
            server = InferenceServer(net, max_batch=1, max_wait_ms=0.0)
            server.pool = _GatedPool(net, server.config)
            await server.start()
            server.pool.gate = asyncio.Event()  # never opened: batch
            pending = asyncio.create_task(      # blocks in the pool
                server.submit(tiny_images(rng, net, 1)[0]))
            await asyncio.sleep(0.05)  # let it dispatch into the gate
            await asyncio.wait_for(server.stop(drain=False), timeout=5)
            with pytest.raises(ServeError):
                await asyncio.wait_for(pending, timeout=5)

        asyncio.run(main())

    def test_submit_many_nowait_settles_all_before_raising(self, rng):
        """Backpressure inside submit_many can't orphan sibling tasks."""
        net = tiny_network(rng)
        images = tiny_images(rng, net, 24)

        async def main():
            server = InferenceServer(net, max_batch=1, queue_depth=2)
            server.pool = _GatedPool(net, server.config)
            async with server:
                server.pool.gate = asyncio.Event()
                attempt = asyncio.create_task(
                    server.submit_many(images, wait=False))
                await asyncio.sleep(0.05)
                server.pool.gate.set()
                with pytest.raises(BackpressureError):
                    await attempt
                # Everything settled: accepted requests completed,
                # the rest were rejected — none left in flight.
                await server.stop()
                return (server.metrics.completed,
                        server.metrics.rejected)

        completed, rejected = asyncio.run(main())
        assert completed + rejected == 24
        assert rejected >= 1

    def test_double_start_and_post_stop_submit_rejected(self, rng):
        net = tiny_network(rng)

        async def main():
            server = InferenceServer(net)
            await server.start()
            with pytest.raises(ServeError):
                await server.start()
            await server.stop()
            with pytest.raises(ServeError):
                await server.submit(tiny_images(rng, net, 1)[0])

        asyncio.run(main())

    def test_pool_validation(self, rng):
        net = tiny_network(rng)
        config = AcceleratorConfig.for_network(net)
        with pytest.raises(ConfigurationError):
            EnginePool(net, config, size=0)
        with pytest.raises(ConfigurationError):
            EnginePool(net, config, mode="fiber")


class TestMetrics:
    def test_percentiles_and_histogram(self):
        metrics = ServerMetrics()
        for latency in range(1, 101):  # 1..100 ms
            metrics.record(latency_ms=float(latency), queue_wait_ms=0.5,
                           service_ms=1.0, batch_size=4 if latency % 2
                           else 8)
        snapshot = metrics.snapshot(queue_depth=3)
        assert snapshot.completed == 100
        assert snapshot.queue_depth == 3
        assert snapshot.latency_ms["p50"] == pytest.approx(50.5)
        assert snapshot.latency_ms["p99"] == pytest.approx(99.01)
        assert snapshot.latency_ms["max"] == pytest.approx(100.0)
        assert snapshot.batch_size_histogram == {4: 50, 8: 50}
        assert snapshot.mean_batch_size == pytest.approx(6.0)

    def test_snapshot_is_json_serializable(self):
        metrics = ServerMetrics()
        metrics.record(1.0, 0.1, 0.5, 2)
        metrics.record_rejected()
        payload = json.loads(json.dumps(metrics.snapshot().to_dict()))
        assert payload["completed"] == 1
        assert payload["rejected"] == 1
        assert payload["batch_size_histogram"] == {"2": 1}

    def test_empty_snapshot_is_all_zeros(self):
        snapshot = ServerMetrics().snapshot()
        assert snapshot.completed == 0
        assert snapshot.latency_ms["p99"] == 0.0
        assert snapshot.mean_batch_size == 0.0


class TestLoadGenerator:
    def test_rate_validated(self):
        with pytest.raises(ConfigurationError):
            LoadGenerator(lambda image: None, rate_rps=0.0)

    def test_failures_recorded_not_raised(self, rng):
        calls = {"n": 0}

        async def flaky(image):
            calls["n"] += 1
            if calls["n"] % 2:
                raise ServeError("boom")
            return "ok"

        report = asyncio.run(
            LoadGenerator(flaky, rate_rps=10_000.0).run(range(6)))
        assert report.completed == 3
        assert report.failed == 3
        assert [r for r in report.results if r is not None] == ["ok"] * 3
        assert sum(1 for e in report.errors if e is not None) == 3


class TestTcpTransport:
    def test_roundtrip_metrics_and_errors(self, rng):
        net = tiny_network(rng)
        images = tiny_images(rng, net, 5)
        logits, _ = direct_run(net, images)

        async def main():
            async with InferenceServer(net, max_batch=4) as server:
                tcp, port = await start_tcp_server(server)
                try:
                    async with TcpClient(port=port) as client:
                        assert await client.ping()
                        responses = await asyncio.gather(
                            *(client.infer(image) for image in images))
                        with pytest.raises(ServeError):
                            await client.infer(np.zeros((3, 3)))
                        metrics = await client.metrics()
                        return responses, metrics
                finally:
                    tcp.close()
                    await tcp.wait_closed()

        responses, metrics = asyncio.run(main())
        np.testing.assert_array_equal(
            [r["prediction"] for r in responses], logits.argmax(axis=1))
        assert all(r["cycles"] > 0 for r in responses)
        assert metrics["completed"] == 5

    def test_malformed_requests_get_error_replies(self, rng):
        """Every bad line answers — a pipelining client must never hang."""
        net = tiny_network(rng)

        async def main():
            async with InferenceServer(net) as server:
                tcp, port = await start_tcp_server(server)
                try:
                    reader, writer = await asyncio.open_connection(
                        "127.0.0.1", port)
                    lines = [b"not json at all\n",
                             b"5\n",  # valid JSON, not an object
                             b'{"id": 1, "image": null}\n',
                             b'{"id": 2, "image": {"a": 1}}\n',
                             b'{"id": 3}\n']
                    writer.write(b"".join(lines))
                    await writer.drain()
                    replies = [json.loads(await asyncio.wait_for(
                        reader.readline(), timeout=5))
                        for _ in lines]
                    writer.close()
                    await writer.wait_closed()
                    return replies
                finally:
                    tcp.close()
                    await tcp.wait_closed()

        replies = asyncio.run(main())
        assert all("error" in reply for reply in replies)
        answered_ids = {reply["id"] for reply in replies}
        assert {1, 2, 3} <= answered_ids  # errors carry the request id

    def test_transport_requires_running_server(self, rng):
        net = tiny_network(rng)

        async def main():
            with pytest.raises(ServeError):
                await start_tcp_server(InferenceServer(net))

        asyncio.run(main())

    def test_client_request_after_connection_closed_fails_fast(
            self, rng):
        """A dead connection raises instead of hanging the caller."""
        net = tiny_network(rng)
        image = tiny_images(rng, net, 1)[0]

        async def drop_connection(reader, writer):
            writer.close()

        async def main():
            tcp = await asyncio.start_server(drop_connection,
                                             "127.0.0.1", 0)
            port = tcp.sockets[0].getsockname()[1]
            client = await TcpClient(port=port).connect()
            await asyncio.sleep(0.05)  # read loop sees EOF and exits
            with pytest.raises(ServeError):
                await asyncio.wait_for(client.infer(image), timeout=5)
            await client.close()
            tcp.close()
            await tcp.wait_closed()

        asyncio.run(main())


class TestTcpFrameNegotiation:
    """Binary frames on the serving transport: negotiated, optional,
    invisible in the results."""

    def test_binary_negotiated_and_matches_json_client(self, rng):
        net = tiny_network(rng)
        images = tiny_images(rng, net, 4)
        logits, _ = direct_run(net, images)

        async def main():
            async with InferenceServer(net, max_batch=4) as server:
                tcp, port = await start_tcp_server(server)
                try:
                    async with TcpClient(port=port) as fast, \
                            TcpClient(port=port, frames="json") as slow:
                        assert fast.binary is True
                        assert slow.binary is False
                        fast_replies = await asyncio.gather(
                            *(fast.infer(image) for image in images))
                        slow_replies = await asyncio.gather(
                            *(slow.infer(image) for image in images))
                        return fast_replies, slow_replies
                finally:
                    tcp.close()
                    await tcp.wait_closed()

        fast_replies, slow_replies = asyncio.run(main())
        for fast_reply, slow_reply, expected in zip(
                fast_replies, slow_replies, logits):
            assert fast_reply["logits"] == slow_reply["logits"]
            np.testing.assert_array_equal(fast_reply["logits"], expected)
            assert fast_reply["prediction"] == int(expected.argmax())

    def test_json_pinned_server_declines_binary(self, rng):
        net = tiny_network(rng)
        image = tiny_images(rng, net, 1)[0]
        logits, _ = direct_run(net, image[np.newaxis])

        async def main():
            async with InferenceServer(net) as server:
                tcp, port = await start_tcp_server(server, frames="json")
                try:
                    async with TcpClient(port=port) as client:
                        assert client.binary is False
                        return await client.infer(image)
                finally:
                    tcp.close()
                    await tcp.wait_closed()

        reply = asyncio.run(main())
        np.testing.assert_array_equal(reply["logits"], logits[0])

    def test_binary_errors_still_typed(self, rng):
        """Typed server errors survive the binary framing."""
        net = tiny_network(rng)

        async def main():
            async with InferenceServer(net) as server:
                tcp, port = await start_tcp_server(server)
                try:
                    async with TcpClient(port=port) as client:
                        assert client.binary is True
                        with pytest.raises(ServeError):
                            await client.infer(np.zeros((2, 2)))
                        assert await client.ping()
                finally:
                    tcp.close()
                    await tcp.wait_closed()

        asyncio.run(main())


class TestResultCache:
    """Content-addressed result cache on the serving admission path."""

    def _serve_seq(self, network, images, **server_kwargs):
        """Submit images one at a time so later duplicates can hit the
        cache filled by earlier completions."""

        async def main():
            async with InferenceServer(network, **server_kwargs) as server:
                results = [await server.submit(image) for image in images]
                return results, server.metrics.snapshot(), server.snapshot()

        return asyncio.run(main())

    def test_duplicate_submission_served_from_cache(self, rng):
        from repro.telemetry import get_registry

        get_registry().reset()
        net = tiny_network(rng)
        image = tiny_images(rng, net, 1)[0]
        results, snapshot, full = self._serve_seq(
            net, [image, image, image], max_wait_ms=0.0)
        assert snapshot.cached == 2
        assert snapshot.completed == 3
        first, *hits = results
        for hit in hits:
            assert hit.prediction == first.prediction
            np.testing.assert_array_equal(hit.logits, first.logits)
            assert hit.trace == first.trace
            assert hit.cycles == first.cycles
            assert hit.latency_ms == 0.0  # replay never touches a lane
        cache = full.fabric["result_cache"]
        assert cache["hits"] == 2 and cache["misses"] == 1
        families = get_registry().to_dict()
        series = families["repro_result_cache_hits_total"]["series"]
        assert series and series[0]["value"] >= 2

    def test_distinct_images_never_cross_hit(self, rng):
        net = tiny_network(rng)
        images = tiny_images(rng, net, 6)
        results, snapshot, _ = self._serve_seq(net, list(images),
                                               max_wait_ms=0.0)
        assert snapshot.cached == 0
        expected = direct_run(net, images)[0].argmax(axis=1)
        np.testing.assert_array_equal(
            [r.prediction for r in results], expected)

    def test_cache_disabled_by_zero_capacity(self, rng):
        net = tiny_network(rng)
        image = tiny_images(rng, net, 1)[0]
        _, snapshot, full = self._serve_seq(
            net, [image, image], max_wait_ms=0.0, result_cache=0)
        assert snapshot.cached == 0
        assert snapshot.completed == 2
        assert full.fabric["result_cache"]["capacity"] == 0

    def test_lru_eviction_is_bounded(self, rng):
        net = tiny_network(rng)
        images = tiny_images(rng, net, 4)
        _, _, full = self._serve_seq(net, list(images), max_wait_ms=0.0,
                                     result_cache=2)
        cache = full.fabric["result_cache"]
        assert cache["entries"] == 2
        assert cache["evictions"] == 2
